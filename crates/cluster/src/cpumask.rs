//! CPU affinity masks.
//!
//! A [`CpuMask`] is a dynamic bitset over the cores of one node. The DROM
//! substrate manipulates these to express task→core pinning; the SD-Policy
//! node-management layer (paper Listing 3) uses the socket helpers to keep
//! co-scheduled jobs isolated on separate sockets.

use std::fmt;

const BITS: usize = 64;

/// A set of CPU core indices within one node.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct CpuMask {
    words: Vec<u64>,
    ncores: usize,
}

impl CpuMask {
    /// Empty mask for a node with `ncores` cores.
    pub fn empty(ncores: usize) -> CpuMask {
        CpuMask {
            words: vec![0; ncores.div_ceil(BITS)],
            ncores,
        }
    }

    /// Mask with every core of the node set.
    pub fn full(ncores: usize) -> CpuMask {
        let mut m = CpuMask::empty(ncores);
        for c in 0..ncores {
            m.set(c);
        }
        m
    }

    /// Mask covering the half-open core range `[lo, hi)`.
    pub fn range(ncores: usize, lo: usize, hi: usize) -> CpuMask {
        let mut m = CpuMask::empty(ncores);
        for c in lo..hi.min(ncores) {
            m.set(c);
        }
        m
    }

    /// Number of cores this mask is defined over (node width, not popcount).
    pub fn width(&self) -> usize {
        self.ncores
    }

    /// Sets core `c`. Panics if out of range (programming error).
    pub fn set(&mut self, c: usize) {
        assert!(c < self.ncores, "core {c} out of range {}", self.ncores);
        self.words[c / BITS] |= 1 << (c % BITS);
    }

    /// Clears core `c`.
    pub fn clear(&mut self, c: usize) {
        assert!(c < self.ncores, "core {c} out of range {}", self.ncores);
        self.words[c / BITS] &= !(1 << (c % BITS));
    }

    /// Whether core `c` is in the mask.
    pub fn contains(&self, c: usize) -> bool {
        c < self.ncores && self.words[c / BITS] & (1 << (c % BITS)) != 0
    }

    /// Number of cores set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Union, in place.
    pub fn union_with(&mut self, other: &CpuMask) {
        debug_assert_eq!(self.ncores, other.ncores);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Intersection, in place.
    pub fn intersect_with(&mut self, other: &CpuMask) {
        debug_assert_eq!(self.ncores, other.ncores);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Removes `other`'s cores, in place.
    pub fn subtract(&mut self, other: &CpuMask) {
        debug_assert_eq!(self.ncores, other.ncores);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// True if the two masks share no core.
    pub fn is_disjoint(&self, other: &CpuMask) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == 0)
    }

    /// Iterates over set core indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.ncores).filter(move |&c| self.contains(c))
    }

    /// Raw bitset words (64 cores per word, ascending), for persistence.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a mask from raw words. `None` when the word count doesn't
    /// match the width or a bit beyond `ncores` is set.
    pub fn from_words(ncores: usize, words: Vec<u64>) -> Option<CpuMask> {
        if words.len() != ncores.div_ceil(BITS) {
            return None;
        }
        if let Some(last) = words.last() {
            let tail_bits = ncores % BITS;
            if tail_bits != 0 && *last >> tail_bits != 0 {
                return None;
            }
        }
        Some(CpuMask { words, ncores })
    }

    /// The lowest `n` set cores as a new mask (used when shrinking a task to
    /// a core budget while keeping placement stable).
    pub fn take_lowest(&self, n: usize) -> CpuMask {
        let mut out = CpuMask::empty(self.ncores);
        for c in self.iter().take(n) {
            out.set(c);
        }
        out
    }
}

impl fmt::Debug for CpuMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuMask[{}/{}:", self.count(), self.ncores)?;
        let mut first = true;
        // Render as compressed ranges: 0-3,8,12-15
        let mut iter = self.iter().peekable();
        while let Some(start) = iter.next() {
            let mut end = start;
            while iter.peek() == Some(&(end + 1)) {
                end = iter.next().unwrap();
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if start == end {
                write!(f, "{start}")?;
            } else {
                write!(f, "{start}-{end}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut m = CpuMask::empty(128);
        assert!(!m.contains(70));
        m.set(70);
        assert!(m.contains(70));
        assert_eq!(m.count(), 1);
        m.clear(70);
        assert!(m.is_empty());
    }

    #[test]
    fn full_and_range() {
        let m = CpuMask::full(48);
        assert_eq!(m.count(), 48);
        let r = CpuMask::range(48, 24, 48);
        assert_eq!(r.count(), 24);
        assert!(!r.contains(23));
        assert!(r.contains(24));
        assert!(r.contains(47));
    }

    #[test]
    fn range_clamps_to_width() {
        let r = CpuMask::range(8, 4, 100);
        assert_eq!(r.count(), 4);
    }

    #[test]
    fn set_operations() {
        let a = CpuMask::range(16, 0, 8);
        let b = CpuMask::range(16, 8, 16);
        assert!(a.is_disjoint(&b));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 16);

        let mut i = u.clone();
        i.intersect_with(&a);
        assert_eq!(i, a);

        let mut s = u.clone();
        s.subtract(&a);
        assert_eq!(s, b);
    }

    #[test]
    fn iter_ascending() {
        let mut m = CpuMask::empty(96);
        for c in [90, 3, 65] {
            m.set(c);
        }
        let v: Vec<usize> = m.iter().collect();
        assert_eq!(v, vec![3, 65, 90]);
    }

    #[test]
    fn take_lowest() {
        let m = CpuMask::range(16, 4, 12);
        let low = m.take_lowest(3);
        assert_eq!(low.iter().collect::<Vec<_>>(), vec![4, 5, 6]);
        let all = m.take_lowest(100);
        assert_eq!(all, m);
    }

    #[test]
    fn debug_renders_ranges() {
        let mut m = CpuMask::empty(16);
        for c in [0, 1, 2, 3, 8, 12, 13] {
            m.set(c);
        }
        assert_eq!(format!("{m:?}"), "CpuMask[7/16:0-3,8,12-13]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        CpuMask::empty(4).set(4);
    }
}
