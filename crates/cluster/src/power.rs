//! Power and energy model.
//!
//! Substitution for the paper's "energy consumption … reported by system
//! software": node power is `idle + busy_cores × core_watts × utilisation`,
//! where the utilisation weight comes from the running application's CPU
//! profile (compute-bound apps draw more than memory-bound ones). Energy is
//! the exact integral of that step function — the [`EnergyMeter`] is advanced
//! lazily at every occupancy change, so the integration is event-accurate.

use simkit::SimTime;

/// Per-node power coefficients (watts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power drawn by a powered-on, idle node.
    pub idle_watts: f64,
    /// Additional power per fully-busy core.
    pub core_watts: f64,
}

impl PowerModel {
    /// MN4-like node: ~200 W idle, ~6 W per busy core (48 cores → ~490 W full).
    pub fn mn4_node() -> PowerModel {
        PowerModel {
            idle_watts: 200.0,
            core_watts: 6.0,
        }
    }

    /// Instantaneous power of one node given a *weighted* busy-core count
    /// (cores × per-job CPU-utilisation factor).
    pub fn node_power(&self, weighted_busy_cores: f64) -> f64 {
        self.idle_watts + self.core_watts * weighted_busy_cores.max(0.0)
    }
}

/// Integrates whole-machine energy over simulation time.
///
/// The caller reports every change of the machine-wide weighted busy-core
/// count; the meter integrates the resulting step function. All `nodes` are
/// assumed powered on for the entire measured interval (the paper's systems
/// do not power-gate idle nodes).
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: PowerModel,
    nodes: u32,
    last_time: SimTime,
    weighted_busy: f64,
    joules: f64,
    started: bool,
}

impl EnergyMeter {
    pub fn new(model: PowerModel, nodes: u32) -> Self {
        EnergyMeter {
            model,
            nodes,
            last_time: SimTime::ZERO,
            weighted_busy: 0.0,
            joules: 0.0,
            started: false,
        }
    }

    /// Marks the measurement start (first job arrival).
    pub fn start(&mut self, now: SimTime) {
        self.last_time = now;
        self.started = true;
    }

    /// Advances the integral to `now` and records a new machine-wide weighted
    /// busy-core count effective from `now` on.
    pub fn update(&mut self, now: SimTime, weighted_busy_cores: f64) {
        if !self.started {
            self.start(now);
        }
        let dt = now.since(self.last_time) as f64;
        if dt > 0.0 {
            self.joules += self.instant_power() * dt;
            self.last_time = now;
        }
        self.weighted_busy = weighted_busy_cores.max(0.0);
    }

    /// Finalises the integral at `end` and returns total energy in joules.
    pub fn finish(&mut self, end: SimTime) -> f64 {
        self.update(end, self.weighted_busy);
        self.joules
    }

    /// Current machine power in watts.
    pub fn instant_power(&self) -> f64 {
        self.nodes as f64 * self.model.idle_watts + self.model.core_watts * self.weighted_busy
    }

    /// Energy accumulated so far, joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Convenience: kWh accumulated so far.
    pub fn kwh(&self) -> f64 {
        self.joules / 3.6e6
    }

    /// Mutable integration state, for persistence:
    /// `(last_time, weighted_busy, joules, started)`. The model and node
    /// count are configuration, not state — the restorer supplies them.
    pub fn snapshot(&self) -> (SimTime, f64, f64, bool) {
        (self.last_time, self.weighted_busy, self.joules, self.started)
    }

    /// Rebuilds a meter from configuration plus a
    /// [`snapshot`](EnergyMeter::snapshot).
    pub fn from_snapshot(
        model: PowerModel,
        nodes: u32,
        last_time: SimTime,
        weighted_busy: f64,
        joules: f64,
        started: bool,
    ) -> Self {
        EnergyMeter {
            model,
            nodes,
            last_time,
            weighted_busy,
            joules,
            started,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_machine_draws_idle_power() {
        let mut m = EnergyMeter::new(PowerModel::mn4_node(), 10);
        m.start(SimTime(0));
        let j = m.finish(SimTime(100));
        assert!((j - 10.0 * 200.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn step_function_integrates_exactly() {
        let mut m = EnergyMeter::new(
            PowerModel {
                idle_watts: 100.0,
                core_watts: 10.0,
            },
            2,
        );
        m.start(SimTime(0));
        m.update(SimTime(10), 4.0); // 0–10 s idle: 2×100 × 10 = 2000 J
        m.update(SimTime(20), 0.0); // 10–20 s: (200 + 40) × 10 = 2400 J
        let j = m.finish(SimTime(30)); // 20–30 s idle again: 2000 J
        assert!((j - 6400.0).abs() < 1e-9);
    }

    #[test]
    fn update_without_start_self_starts() {
        let mut m = EnergyMeter::new(PowerModel::mn4_node(), 1);
        m.update(SimTime(50), 10.0);
        let j = m.finish(SimTime(60));
        // Only the 50–60 s interval is measured.
        assert!((j - (200.0 + 6.0 * 10.0) * 10.0).abs() < 1e-9);
    }

    #[test]
    fn utilisation_weighting_scales_power() {
        let pm = PowerModel {
            idle_watts: 50.0,
            core_watts: 2.0,
        };
        assert!((pm.node_power(8.0) - 66.0).abs() < 1e-12);
        assert!((pm.node_power(4.0) - 58.0).abs() < 1e-12); // same cores, half util weight
        assert_eq!(pm.node_power(-3.0), 50.0, "negative clamped");
    }

    #[test]
    fn kwh_conversion() {
        let mut m = EnergyMeter::new(
            PowerModel {
                idle_watts: 1000.0,
                core_watts: 0.0,
            },
            1,
        );
        m.start(SimTime(0));
        m.finish(SimTime(3600));
        assert!((m.kwh() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_updates_at_same_instant_keep_last() {
        let mut m = EnergyMeter::new(
            PowerModel {
                idle_watts: 0.0,
                core_watts: 1.0,
            },
            1,
        );
        m.start(SimTime(0));
        m.update(SimTime(0), 5.0);
        m.update(SimTime(0), 7.0);
        let j = m.finish(SimTime(10));
        assert!((j - 70.0).abs() < 1e-9);
    }
}
