//! # cluster — hardware model of an HPC machine
//!
//! Substrate for the scheduler: node/socket/core topology, whole-cluster
//! capacity accounting, and the power/energy model used to reproduce the
//! paper's energy results.
//!
//! Responsibilities are split by altitude:
//!
//! * [`spec`] — immutable machine description ([`NodeSpec`], [`ClusterSpec`])
//!   with presets for the machines in the paper (MareNostrum4, CEA Curie,
//!   RICC, and the Cirne-model system),
//! * [`cpumask`] — per-core bitmask used at node level by the DROM substrate,
//! * [`state`] — dynamic occupancy: which job holds how many cores on which
//!   node ([`ClusterState`]), the ground truth the scheduler works against,
//! * [`power`] — energy integration over occupancy changes ([`EnergyMeter`]).
//!
//! Core *counts* live here; core *identities* (which exact cores a task is
//! pinned to) are the `drom` crate's business.

pub mod cpumask;
pub mod power;
pub mod spec;
pub mod state;

pub use cpumask::CpuMask;
pub use power::{EnergyMeter, PowerModel};
pub use spec::{ClusterSpec, NodeSpec};
pub use state::{AllocError, ClusterState, JobId, NodeId, NodeOccupancy};
