//! Property tests: CpuMask set algebra against a reference HashSet model.

use cluster::CpuMask;
use proptest::prelude::*;
use std::collections::HashSet;

const W: usize = 96; // two 48-core sockets

fn arb_mask() -> impl Strategy<Value = (CpuMask, HashSet<usize>)> {
    prop::collection::hash_set(0usize..W, 0..W).prop_map(|set| {
        let mut m = CpuMask::empty(W);
        for &c in &set {
            m.set(c);
        }
        (m, set)
    })
}

proptest! {
    #[test]
    fn count_matches_model((m, set) in arb_mask()) {
        prop_assert_eq!(m.count(), set.len());
        prop_assert_eq!(m.is_empty(), set.is_empty());
        for c in 0..W {
            prop_assert_eq!(m.contains(c), set.contains(&c));
        }
    }

    #[test]
    fn union_matches_model((a, sa) in arb_mask(), (b, sb) in arb_mask()) {
        let mut u = a.clone();
        u.union_with(&b);
        let expect: HashSet<usize> = sa.union(&sb).copied().collect();
        prop_assert_eq!(u.iter().collect::<HashSet<_>>(), expect);
    }

    #[test]
    fn intersect_matches_model((a, sa) in arb_mask(), (b, sb) in arb_mask()) {
        let mut i = a.clone();
        i.intersect_with(&b);
        let expect: HashSet<usize> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(i.iter().collect::<HashSet<_>>(), expect);
    }

    #[test]
    fn subtract_matches_model((a, sa) in arb_mask(), (b, sb) in arb_mask()) {
        let mut d = a.clone();
        d.subtract(&b);
        let expect: HashSet<usize> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(d.iter().collect::<HashSet<_>>(), expect);
        prop_assert!(d.is_disjoint(&b));
    }

    #[test]
    fn take_lowest_is_prefix((a, _sa) in arb_mask(), n in 0usize..W) {
        let low = a.take_lowest(n);
        prop_assert_eq!(low.count(), n.min(a.count()));
        // Every taken core is in the original, and they are the smallest.
        let taken: Vec<usize> = low.iter().collect();
        let original: Vec<usize> = a.iter().collect();
        prop_assert_eq!(&taken[..], &original[..taken.len()]);
    }

    #[test]
    fn iter_is_sorted((a, _s) in arb_mask()) {
        let v: Vec<usize> = a.iter().collect();
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(v, sorted);
    }
}

/// Regression: every mask operation must also hold on zero-width masks
/// (a node with no cores), which the random model above never generates.
#[test]
fn zero_width_masks_are_inert() {
    let mut a = CpuMask::empty(0);
    let b = CpuMask::full(0);
    a.union_with(&b);
    a.intersect_with(&b);
    a.subtract(&b);
    assert_eq!(a.count(), 0);
    assert!(a.is_empty());
    assert!(a.is_disjoint(&b));
    assert_eq!(a.take_lowest(5).count(), 0);
    assert_eq!(CpuMask::range(0, 0, 0).count(), 0);
    assert_eq!(a.iter().count(), 0);
    assert_eq!(format!("{a:?}"), "CpuMask[0/0:]");
}
