//! Property test: random placement/shrink/remove sequences never violate
//! the ClusterState invariants.

use cluster::{ClusterSpec, ClusterState, JobId, NodeId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Place { job: u64, nodes: Vec<u32>, cores: u32 },
    SetCores { job: u64, node: u32, cores: u32 },
    Remove { job: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            1u64..20,
            prop::collection::vec(0u32..8, 1..4),
            1u32..9
        )
            .prop_map(|(job, nodes, cores)| Op::Place { job, nodes, cores }),
        (1u64..20, 0u32..8, 1u32..9).prop_map(|(job, node, cores)| Op::SetCores {
            job,
            node,
            cores
        }),
        (1u64..20).prop_map(|job| Op::Remove { job }),
    ]
}

proptest! {
    #[test]
    fn invariants_hold_under_random_ops(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut spec = ClusterSpec::ricc(); // 8-core nodes
        spec.nodes = 8;
        let mut cs = ClusterState::new(spec);
        // Track placements so Remove uses real node lists.
        let mut placed: std::collections::HashMap<u64, Vec<NodeId>> = Default::default();
        for op in ops {
            match op {
                Op::Place { job, mut nodes, cores } => {
                    nodes.sort_unstable();
                    nodes.dedup();
                    let ids: Vec<NodeId> = nodes.iter().map(|&n| NodeId(n)).collect();
                    if placed.contains_key(&job) {
                        continue;
                    }
                    if cs.place(JobId(job), &ids, cores).is_ok() {
                        placed.insert(job, ids);
                    }
                }
                Op::SetCores { job, node, cores } => {
                    // Result may be an error (not placed / capacity) — both fine.
                    let _ = cs.set_cores(JobId(job), NodeId(node), cores);
                }
                Op::Remove { job } => {
                    if let Some(nodes) = placed.remove(&job) {
                        cs.remove(JobId(job), &nodes).expect("tracked placement removes cleanly");
                    }
                }
            }
            if let Err(e) = cs.validate() {
                return Err(TestCaseError::fail(format!("invariant broken: {e}")));
            }
        }
        // Drain everything: machine must come back to fully idle.
        let jobs: Vec<u64> = placed.keys().copied().collect();
        for job in jobs {
            let nodes = placed.remove(&job).unwrap();
            cs.remove(JobId(job), &nodes).unwrap();
        }
        prop_assert_eq!(cs.busy_cores(), 0);
        prop_assert_eq!(cs.empty_node_count(), 8);
    }
}
