//! Property test (ISSUE 3 satellite): [`EnergyMeter`] integration over a
//! randomly generated piecewise-constant weighted-busy timeline equals the
//! closed-form `Σ power·dt` to 1e-9 — including zero-duration slots and
//! repeated updates at the same timestamp (the meter must keep the *last*
//! level registered at an instant, matching step-function semantics).

use cluster::{EnergyMeter, PowerModel};
use proptest::prelude::*;
use simkit::SimTime;

/// A timeline step: wait `dt` seconds (possibly 0), then set a new level.
fn arb_timeline() -> impl Strategy<Value = (u64, Vec<(u64, f64)>, u64)> {
    (
        0u64..5_000,                                           // measurement start
        prop::collection::vec((0u64..500, 0.0f64..2_000.0), 1..40),
        0u64..800,                                             // tail after last update
    )
}

proptest! {
    #[test]
    fn meter_equals_closed_form((start, steps, tail) in arb_timeline(),
                                idle in 0.0f64..500.0,
                                core in 0.0f64..20.0,
                                nodes in 1u32..200) {
        let model = PowerModel { idle_watts: idle, core_watts: core };
        let mut meter = EnergyMeter::new(model, nodes);
        meter.start(SimTime(start));

        // Closed form: Σ over constant-level intervals of power × dt. The
        // level effective over [t_i, t_{i+1}) is the *last* level set at or
        // before t_i.
        let mut expected = 0.0f64;
        let mut level = 0.0f64;
        let mut now = start;
        let power = |lvl: f64| nodes as f64 * idle + core * lvl;

        for &(dt, new_level) in &steps {
            let t = now + dt;
            expected += power(level) * dt as f64;
            meter.update(SimTime(t), new_level);
            level = new_level;
            now = t;
        }
        expected += power(level) * tail as f64;
        let joules = meter.finish(SimTime(now + tail));

        prop_assert!(
            (joules - expected).abs() < 1e-9 * expected.abs().max(1.0),
            "meter {} vs closed form {}",
            joules,
            expected
        );
    }

    /// Same-timestamp updates: only the last level at an instant matters,
    /// regardless of how many zero-duration slots precede it.
    #[test]
    fn same_instant_updates_keep_last(levels in prop::collection::vec(0.0f64..100.0, 2..10),
                                      dt in 1u64..1_000) {
        let model = PowerModel { idle_watts: 0.0, core_watts: 1.0 };
        let mut meter = EnergyMeter::new(model, 1);
        meter.start(SimTime(0));
        for &l in &levels {
            meter.update(SimTime(0), l); // all at t = 0
        }
        let joules = meter.finish(SimTime(dt));
        let last = *levels.last().unwrap();
        prop_assert!(
            (joules - last * dt as f64).abs() < 1e-9,
            "joules {} vs last-level integral {}",
            joules,
            last * dt as f64
        );
    }
}
