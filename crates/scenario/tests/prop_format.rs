//! Property tests for the scenario format: parse ∘ render is the identity
//! on valid scenarios, unknown keys are rejected with the offending line
//! number, and sweep expansion matches the declared cross-product.

use proptest::prelude::*;
use sd_scenario::{
    expand, ArrivalKind, BackfillDecl, ClusterPreset, MaxSdDecl, ModelDecl, PolicyKindDecl,
    Scenario, SourceKind,
};

fn arb_source() -> BoxedStrategy<SourceKind> {
    prop_oneof![
        Just(SourceKind::Cirne),
        Just(SourceKind::CirneIdeal),
        Just(SourceKind::Ricc),
        Just(SourceKind::Curie),
    ]
    .boxed()
}

fn arb_maxsd() -> BoxedStrategy<MaxSdDecl> {
    prop_oneof![
        (2u32..100).prop_map(|v| MaxSdDecl::Value(v as f64)),
        (11u32..500).prop_map(|v| MaxSdDecl::Value(v as f64 / 10.0)),
        Just(MaxSdDecl::Infinite),
        Just(MaxSdDecl::Dyn),
    ]
    .boxed()
}

fn arb_opt_f64(lo: u32, hi: u32, denom: f64) -> BoxedStrategy<Option<f64>> {
    prop_oneof![
        Just(None),
        (lo..=hi).prop_map(move |v| Some(v as f64 / denom)),
    ]
    .boxed()
}

/// A valid scenario assembled from independently drawn parts. Only the
/// synthetic sources appear: `real_run`/`swf` carry extra invariants that
/// are exercised by unit tests instead.
fn arb_scenario() -> BoxedStrategy<Scenario> {
    let meta = (
        0u32..10_000,
        prop_oneof![
            Just(String::new()),
            (0u32..100).prop_map(|i| format!("generated study #{i}")),
        ],
        any::<u64>(),
        arb_opt_f64(1, 400, 100.0),
        arb_source(),
    );
    let cluster = (
        prop_oneof![
            Just(ClusterPreset::Auto),
            Just(ClusterPreset::Mn4),
            Just(ClusterPreset::Ricc),
            Just(ClusterPreset::Curie),
        ],
        prop_oneof![Just(None), (1u32..4000).prop_map(Some)],
    );
    let workload = (
        prop_oneof![Just(None), (1usize..20_000).prop_map(Some)],
        arb_opt_f64(1, 10_000, 10.0), // mean_interarrival
        prop_oneof![
            Just(None),
            Just(Some(ArrivalKind::Anl)),
            Just(Some(ArrivalKind::Uniform)),
            Just(Some(ArrivalKind::DayNight)),
        ],
        (10u32..200).prop_map(|v| v as f64 / 10.0), // contrast ≥ 1
        arb_opt_f64(0, 100, 100.0),                 // weekend_factor
        arb_opt_f64(0, 100, 100.0),                 // batch_p
        arb_opt_f64(0, 300, 10.0),                  // batch_mean
    );
    let policy = (
        any::<bool>(),
        arb_maxsd(),
        prop_oneof![
            Just(ModelDecl::Ideal),
            Just(ModelDecl::WorstCase),
            Just(ModelDecl::AppAware),
        ],
        (0u32..100).prop_map(|v| v as f64 / 100.0), // sharing in [0, 1)
    );
    let slurm = (
        prop_oneof![
            Just(None),
            Just(Some(BackfillDecl::Easy)),
            Just(Some(BackfillDecl::Conservative)),
        ],
        prop_oneof![Just(None), (1usize..500).prop_map(Some)],
        (0u32..=100).prop_map(|v| v as f64 / 100.0), // malleable_fraction
        prop_oneof![Just(None), (1u32..9).prop_map(Some)],
    );
    let sweep = (
        prop::collection::vec((0u32..=100).prop_map(|v| v as f64 / 100.0), 0..4),
        prop::collection::vec(arb_maxsd(), 0..4),
        prop::collection::vec(any::<u64>(), 0..3),
        prop::collection::vec((1u32..400).prop_map(|v| v as f64 / 100.0), 0..3),
        prop::collection::vec((0u32..100).prop_map(|v| v as f64 / 100.0), 0..3),
    );
    (meta, cluster, workload, policy, slurm, sweep)
        .prop_map(|(meta, cluster, workload, policy, slurm, sweep)| {
            let (name_i, description, seed, scale, source) = meta;
            let mut s = Scenario::new(&format!("scn-{name_i}"), source);
            s.description = description;
            s.seed = seed;
            s.scale = scale;
            (s.cluster.preset, s.cluster.nodes) = cluster;
            let (jobs, mean, arrivals, contrast, weekend, batch_p, batch_mean) = workload;
            s.workload.jobs = jobs;
            s.workload.mean_interarrival = mean;
            s.workload.arrivals = arrivals;
            if arrivals == Some(ArrivalKind::DayNight) {
                s.workload.day_night_contrast = Some(contrast);
            }
            s.workload.weekend_factor = weekend;
            s.workload.batch_p = batch_p;
            s.workload.batch_mean = batch_mean;
            let (is_static, maxsd, model, sharing) = policy;
            s.policy.kind = if is_static {
                PolicyKindDecl::Static
            } else {
                PolicyKindDecl::Sd
            };
            s.policy.maxsd = maxsd;
            s.policy.model = model;
            s.policy.sharing = sharing;
            (
                s.slurm.backfill,
                s.slurm.backfill_depth,
                s.slurm.malleable_fraction,
                s.slurm.ranks_per_node,
            ) = slurm;
            (
                s.sweep.malleable_fraction,
                s.sweep.maxsd,
                s.sweep.seed,
                s.sweep.scale,
                s.sweep.sharing,
            ) = sweep;
            if s.policy.kind == PolicyKindDecl::Static {
                // A maxsd sweep requires the SD policy (validated at parse).
                s.sweep.maxsd.clear();
            }
            s
        })
        .boxed()
}

proptest! {
    #[test]
    fn parse_render_roundtrips(s in arb_scenario()) {
        let text = s.render();
        let back = match Scenario::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                return Err(TestCaseError::fail(format!("render not parseable: {e}\n{text}")))
            }
        };
        prop_assert_eq!(&back, &s, "roundtrip mismatch for:\n{}", text);
        // Render is canonical: a second render is byte-identical.
        prop_assert_eq!(back.render(), text);
    }

    #[test]
    fn unknown_keys_rejected_with_their_line(s in arb_scenario()) {
        let mut text = s.render();
        let expected_line = text.lines().count() + 1;
        text.push_str("zz_unknown_knob = 1\n");
        let err = match Scenario::parse(&text) {
            Err(e) => e,
            Ok(_) => return Err(TestCaseError::fail("unknown key accepted")),
        };
        prop_assert_eq!(err.line, expected_line, "error: {}", err);
        prop_assert!(err.msg.contains("zz_unknown_knob"), "error: {}", err);
    }

    #[test]
    fn expansion_matches_declared_cross_product(s in arb_scenario()) {
        let points = expand(&s);
        prop_assert_eq!(points.len(), s.sweep.run_count());
        for p in &points {
            prop_assert!(p.scenario.sweep.is_empty());
        }
        if s.sweep.is_empty() {
            prop_assert_eq!(points.len(), 1);
            prop_assert_eq!(&points[0].variant, "");
        }
    }
}
