//! The raw scenario file format: `#` comments, `[section]` headers and
//! `key = value` entries, every entry tagged with its 1-based line number so
//! the typed layer ([`crate::scenario`]) can reject unknown or out-of-range
//! keys with a precise location.
//!
//! ```text
//! # a comment
//! [scenario]
//! name = bursty
//! seed = 42
//!
//! [sweep]
//! malleable_fraction = [0.0, 0.5, 1.0]
//! ```
//!
//! The format is deliberately tiny and dependency-free: no quoting, no
//! escapes, no nesting. Values are opaque strings here; lists use
//! `[a, b, c]` brackets and are split by the typed layer.

use std::fmt;

/// A parse (or validation) error pinned to a line of the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the scenario text.
    pub line: usize,
    pub msg: String,
}

impl ParseError {
    pub fn new(line: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// One `key = value` entry with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEntry {
    pub key: String,
    pub value: String,
    pub line: usize,
}

/// One `[section]` with its entries, in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSection {
    pub name: String,
    pub line: usize,
    pub entries: Vec<RawEntry>,
}

impl RawSection {
    /// Looks up a key (sections are small; linear scan).
    pub fn get(&self, key: &str) -> Option<&RawEntry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A whole parsed document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RawDoc {
    pub sections: Vec<RawSection>,
}

impl RawDoc {
    pub fn section(&self, name: &str) -> Option<&RawSection> {
        self.sections.iter().find(|s| s.name == name)
    }
}

/// Parses the raw section/key-value structure. Duplicate sections and
/// duplicate keys within a section are errors (a scenario is a description,
/// not a script — last-wins semantics would hide typos).
pub fn parse_raw(text: &str) -> Result<RawDoc, ParseError> {
    parse_raw_with(text, false)
}

/// Like [`parse_raw`], but optionally allowing a section name to repeat —
/// list-like documents (the `sd-validate` expectation files' `[claim]`
/// records) use repetition; scenario files stay strict.
pub fn parse_raw_with(text: &str, allow_repeated_sections: bool) -> Result<RawDoc, ParseError> {
    let mut doc = RawDoc::default();
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ParseError::new(line_no, "unterminated section header"));
            };
            let name = name.trim();
            if name.is_empty() {
                return Err(ParseError::new(line_no, "empty section name"));
            }
            if !allow_repeated_sections && doc.section(name).is_some() {
                return Err(ParseError::new(line_no, format!("duplicate section [{name}]")));
            }
            doc.sections.push(RawSection {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseError::new(
                line_no,
                format!("expected `key = value` or `[section]`, got `{line}`"),
            ));
        };
        let key = key.trim();
        let value = value.trim();
        if key.is_empty() {
            return Err(ParseError::new(line_no, "empty key"));
        }
        let Some(section) = doc.sections.last_mut() else {
            return Err(ParseError::new(
                line_no,
                format!("`{key}` appears before any [section] header"),
            ));
        };
        if section.entries.iter().any(|e| e.key == key) {
            return Err(ParseError::new(
                line_no,
                format!("duplicate key `{key}` in [{}]", section.name),
            ));
        }
        section.entries.push(RawEntry {
            key: key.to_string(),
            value: value.to_string(),
            line: line_no,
        });
    }
    Ok(doc)
}

// ----- typed value helpers (shared by the scenario layer) -----

pub fn parse_f64(e: &RawEntry) -> Result<f64, ParseError> {
    e.value
        .parse()
        .map_err(|_| ParseError::new(e.line, format!("`{}`: not a number: {}", e.key, e.value)))
}

pub fn parse_u64(e: &RawEntry) -> Result<u64, ParseError> {
    e.value
        .parse()
        .map_err(|_| ParseError::new(e.line, format!("`{}`: not an integer: {}", e.key, e.value)))
}

pub fn parse_u32(e: &RawEntry) -> Result<u32, ParseError> {
    e.value
        .parse()
        .map_err(|_| ParseError::new(e.line, format!("`{}`: not an integer: {}", e.key, e.value)))
}

pub fn parse_usize(e: &RawEntry) -> Result<usize, ParseError> {
    e.value
        .parse()
        .map_err(|_| ParseError::new(e.line, format!("`{}`: not an integer: {}", e.key, e.value)))
}

/// Splits a `[a, b, c]` list value into trimmed item strings. `[]` is the
/// empty list; bare (bracketless) values are rejected — sweep axes are
/// always lists.
pub fn parse_list(e: &RawEntry) -> Result<Vec<String>, ParseError> {
    let v = e.value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| {
            ParseError::new(e.line, format!("`{}`: expected a `[a, b, c]` list", e.key))
        })?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    Ok(inner.split(',').map(|s| s.trim().to_string()).collect())
}

/// Renders a list value canonically (`[a, b, c]`).
pub fn render_list<T: fmt::Display>(items: &[T]) -> String {
    let parts: Vec<String> = items.iter().map(|i| i.to_string()).collect();
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_entries_comments() {
        let doc = parse_raw(
            "# header comment\n\n[scenario]\nname = x\nseed = 7\n\n[sweep]\nseed = [1, 2]\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        let sc = doc.section("scenario").unwrap();
        assert_eq!(sc.line, 3);
        assert_eq!(sc.get("name").unwrap().value, "x");
        assert_eq!(sc.get("seed").unwrap().line, 5);
        let sweep = doc.section("sweep").unwrap();
        assert_eq!(parse_list(sweep.get("seed").unwrap()).unwrap(), vec!["1", "2"]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_raw("[a]\nok = 1\nnot a kv line\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().starts_with("line 3:"), "{e}");

        let e = parse_raw("key = before section\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_raw("[a]\nx = 1\nx = 2\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("duplicate key `x`"));

        let e = parse_raw("[a]\n[a]\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse_raw("[broken\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn list_parsing() {
        let entry = |v: &str| RawEntry {
            key: "k".into(),
            value: v.into(),
            line: 9,
        };
        assert_eq!(
            parse_list(&entry("[0.5, 1.0]")).unwrap(),
            vec!["0.5", "1.0"]
        );
        assert_eq!(parse_list(&entry("[]")).unwrap(), Vec::<String>::new());
        let err = parse_list(&entry("0.5, 1.0")).unwrap_err();
        assert_eq!(err.line, 9);
        assert_eq!(render_list(&[5, 10]), "[5, 10]");
    }

    #[test]
    fn numeric_helpers_report_key_and_line() {
        let e = RawEntry {
            key: "scale".into(),
            value: "abc".into(),
            line: 4,
        };
        let err = parse_f64(&e).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.msg.contains("scale"));
        assert_eq!(parse_u64(&RawEntry { value: "7".into(), ..e.clone() }).unwrap(), 7);
    }
}
