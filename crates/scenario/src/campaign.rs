//! Multi-scenario campaign files: one document naming several scenarios to
//! run back-to-back, each with its own sweep expansion and baselines. The
//! `run_scenario --campaign` path concatenates every member's campaign rows
//! into a single export (the `scenario` column keeps them apart).
//!
//! Format (same section/key grammar as scenarios):
//!
//! ```text
//! [campaign]
//! name = paper-panel
//! description = the five workloads plus the new axis sweeps
//! scenarios = [w3-ricc, backfill-depth-sweep, studies/my-local.scn]
//! ```
//!
//! Members are built-in scenario names first, file paths (relative to the
//! campaign file) second.

use crate::format::{parse_list, parse_raw, ParseError};
use crate::registry::find_builtin;
use crate::scenario::Scenario;
use std::path::Path;

/// A parsed campaign document (members unresolved).
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    pub name: String,
    pub description: String,
    /// Built-in names or scenario-file paths, in run order.
    pub scenarios: Vec<String>,
}

impl Campaign {
    /// Parses a campaign document.
    pub fn parse(text: &str) -> Result<Campaign, ParseError> {
        let doc = parse_raw(text)?;
        let sec = doc
            .section("campaign")
            .ok_or_else(|| ParseError::new(1, "missing [campaign] section"))?;
        for s in &doc.sections {
            if s.name != "campaign" {
                return Err(ParseError::new(
                    s.line,
                    format!("unknown section [{}] (campaign files hold only [campaign])", s.name),
                ));
            }
        }
        let mut name = None;
        let mut description = String::new();
        let mut scenarios = Vec::new();
        for e in &sec.entries {
            match e.key.as_str() {
                "name" => name = Some(e.value.clone()),
                "description" => description = e.value.clone(),
                "scenarios" => {
                    scenarios = parse_list(e)?;
                    if scenarios.is_empty() {
                        return Err(ParseError::new(e.line, "`scenarios` must not be empty"));
                    }
                }
                k => {
                    return Err(ParseError::new(
                        e.line,
                        format!("unknown key `{k}` in [campaign] (name|description|scenarios)"),
                    ))
                }
            }
        }
        let name = name.ok_or_else(|| ParseError::new(sec.line, "[campaign] needs a `name`"))?;
        if scenarios.is_empty() {
            return Err(ParseError::new(sec.line, "[campaign] needs `scenarios`"));
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &scenarios {
            if !seen.insert(s.clone()) {
                return Err(ParseError::new(
                    sec.line,
                    format!("scenario `{s}` listed twice"),
                ));
            }
        }
        Ok(Campaign {
            name,
            description,
            scenarios,
        })
    }

    /// Canonical text form (`parse(render(c)) == c`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "[campaign]");
        let _ = writeln!(out, "name = {}", self.name);
        if !self.description.is_empty() {
            let _ = writeln!(out, "description = {}", self.description);
        }
        let _ = writeln!(out, "scenarios = [{}]", self.scenarios.join(", "));
        out
    }

    /// Resolves every member: built-in name first, then a scenario file
    /// relative to `base_dir` (the campaign file's directory).
    pub fn resolve(&self, base_dir: &Path) -> Result<Vec<Scenario>, String> {
        let mut out = Vec::with_capacity(self.scenarios.len());
        for member in &self.scenarios {
            if let Some(s) = find_builtin(member) {
                out.push(s);
                continue;
            }
            let path = base_dir.join(member);
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!("`{member}` is neither a built-in scenario nor readable at {path:?}: {e}")
            })?;
            let s = Scenario::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            out.push(s);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::expand;

    #[test]
    fn parses_and_roundtrips() {
        let text = "\
# panel
[campaign]
name = demo
description = two members
scenarios = [w3-ricc, bursty]
";
        let c = Campaign::parse(text).unwrap();
        assert_eq!(c.name, "demo");
        assert_eq!(c.scenarios, vec!["w3-ricc", "bursty"]);
        assert_eq!(Campaign::parse(&c.render()).unwrap(), c);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(Campaign::parse("").is_err());
        assert!(Campaign::parse("[campaign]\nname = x\n").is_err(), "no members");
        assert!(Campaign::parse("[campaign]\nname = x\nscenarios = []\n").is_err());
        assert!(
            Campaign::parse("[campaign]\nname = x\nscenarios = [a, a]\n").is_err(),
            "duplicates"
        );
        assert!(
            Campaign::parse("[campaign]\nname = x\nscenarios = [a]\n[extra]\n").is_err(),
            "stray section"
        );
        let e = Campaign::parse("[campaign]\nname = x\nscenarios = [a]\ntypo = 1\n").unwrap_err();
        assert_eq!(e.line, 4);
    }

    #[test]
    fn resolves_builtins_and_reports_unknowns() {
        let c = Campaign {
            name: "x".into(),
            description: String::new(),
            scenarios: vec!["w3-ricc".into(), "bursty".into()],
        };
        let resolved = c.resolve(Path::new(".")).unwrap();
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].name, "w3-ricc");

        let bad = Campaign {
            scenarios: vec!["no-such-scenario".into()],
            ..c
        };
        let err = bad.resolve(Path::new("/nonexistent")).unwrap_err();
        assert!(err.contains("no-such-scenario"), "{err}");
    }

    #[test]
    fn shipped_campaign_file_resolves_against_the_registry() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
        let text = std::fs::read_to_string(dir.join("paper-panel.campaign"))
            .expect("scenarios/paper-panel.campaign ships with the repo");
        let c = Campaign::parse(&text).unwrap();
        let members = c.resolve(&dir).unwrap();
        assert!(members.len() >= 3, "{:?}", c.scenarios);
        // Every member expands to at least one runnable point, and the new
        // axis sweeps ride along.
        for m in &members {
            assert!(!expand(m).is_empty(), "{}", m.name);
        }
        assert!(c.scenarios.iter().any(|s| s == "backfill-depth-sweep"));
        assert!(c.scenarios.iter().any(|s| s == "arrival-contrast-sweep"));
    }
}
