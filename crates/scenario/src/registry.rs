//! Built-in scenarios: the paper's five workloads plus studies the
//! hand-coded figure binaries cannot express — bursty campaigns, diurnal
//! load, mixed static/malleable populations, an oversubscribed machine.
//!
//! The same scenarios ship as text files under `scenarios/` at the
//! repository root (written by `run_scenario --write-builtin <dir>`); a test
//! keeps the two in sync.

use crate::scenario::{
    ArrivalKind, MaxSdDecl, ModelDecl, Scenario, SourceKind, TenantQueueDecl, TenantsDecl,
};

fn paper(name: &str, description: &str, source: SourceKind) -> Scenario {
    let mut s = Scenario::new(name, source);
    s.description = description.to_string();
    s
}

/// All built-in scenarios, in presentation order.
pub fn builtin_scenarios() -> Vec<Scenario> {
    let mut w5 = paper(
        "w5-realrun",
        "Paper Workload 5: real-run applications on the 49-node MN4 subset",
        SourceKind::RealRun,
    );
    w5.policy.model = ModelDecl::AppAware;

    let mut all = vec![
        paper(
            "w1-cirne",
            "Paper Workload 1: Cirne model, ANL arrivals, user estimates",
            SourceKind::Cirne,
        ),
        paper(
            "w2-cirne-ideal",
            "Paper Workload 2: Cirne model with exact runtime estimates",
            SourceKind::CirneIdeal,
        ),
        paper(
            "w3-ricc",
            "Paper Workload 3: RICC-like trace, many small jobs",
            SourceKind::Ricc,
        ),
        paper(
            "w4-curie",
            "Paper Workload 4: CEA-Curie-like trace (the big workload)",
            SourceKind::Curie,
        ),
        w5,
    ];

    // ----- beyond the paper -----

    let mut bursty = paper(
        "bursty",
        "Campaign bursts: 70% of submissions arrive in ~18-job batches, half the jobs rigid",
        SourceKind::Ricc,
    );
    bursty.workload.arrivals = Some(ArrivalKind::Uniform);
    bursty.workload.batch_p = Some(0.7);
    bursty.workload.batch_mean = Some(18.0);
    bursty.slurm.malleable_fraction = 0.5;
    all.push(bursty);

    let mut diurnal = paper(
        "diurnal",
        "Hard day/night cycle (6x daytime intensity, quiet weekends) on the Cirne model",
        SourceKind::Cirne,
    );
    diurnal.workload.arrivals = Some(ArrivalKind::DayNight);
    diurnal.workload.day_night_contrast = Some(6.0);
    diurnal.workload.weekend_factor = Some(0.25);
    all.push(diurnal);

    let mut fraction = paper(
        "malleable-fraction-sweep",
        "How much malleability is enough: sweep the malleable-job fraction on W3",
        SourceKind::Ricc,
    );
    fraction.sweep.malleable_fraction = vec![0.0, 0.25, 0.5, 0.75, 1.0];
    all.push(fraction);

    let mut oversub = paper(
        "oversubscribed",
        "Curie-like machine under ~2.2x the paper's offered load",
        SourceKind::Curie,
    );
    oversub.workload.mean_interarrival = Some(50.0);
    oversub.scale = Some(0.02);
    all.push(oversub);

    let mut maxsd = paper(
        "maxsd-sweep",
        "The paper's Figs. 1-3 cut-off sweep as one declarative campaign (W2)",
        SourceKind::CirneIdeal,
    );
    maxsd.sweep.maxsd = vec![
        MaxSdDecl::Value(5.0),
        MaxSdDecl::Value(10.0),
        MaxSdDecl::Value(50.0),
        MaxSdDecl::Infinite,
        MaxSdDecl::Dyn,
    ];
    all.push(maxsd);

    let mut depth = paper(
        "backfill-depth-sweep",
        "Scheduler-cost axis: sweep bf_max_job_test from shallow to deep on W3",
        SourceKind::Ricc,
    );
    depth.sweep.backfill_depth = vec![10, 25, 50, 100, 200, 400];
    all.push(depth);

    let mut contrast = paper(
        "arrival-contrast-sweep",
        "Arrival-contrast axis: flat through hard day/night bursts on the Cirne model",
        SourceKind::Cirne,
    );
    contrast.workload.arrivals = Some(ArrivalKind::DayNight);
    contrast.sweep.day_night_contrast = vec![1.0, 2.0, 4.0, 8.0];
    all.push(contrast);

    let mut tenants = paper(
        "tenant-mix-sweep",
        "Multi-tenant axis: Zipf popularity skew and quota pressure under fair-share on W3",
        SourceKind::Ricc,
    );
    tenants.tenants = Some(TenantsDecl {
        queue: TenantQueueDecl::FairShare,
        ..TenantsDecl::new(4)
    });
    tenants.sweep.tenant_skew = vec![0.0, 1.0, 2.0];
    tenants.sweep.quota_fraction = vec![0.5, 1.0];
    all.push(tenants);

    all
}

/// Looks up a built-in scenario by name.
pub fn find_builtin(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{execute, expand};

    #[test]
    fn at_least_eight_unique_named_scenarios() {
        let all = builtin_scenarios();
        assert!(all.len() >= 8, "{} scenarios", all.len());
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len(), "names are unique");
        assert!(all.iter().all(|s| !s.description.is_empty()));
    }

    #[test]
    fn every_builtin_renders_and_roundtrips() {
        for s in builtin_scenarios() {
            let text = s.render();
            let back = Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(back, s, "{}", s.name);
            assert!(!expand(&s).is_empty(), "{}", s.name);
        }
    }

    #[test]
    fn shipped_scenario_files_match_the_registry() {
        // `scenarios/` at the repo root is written by
        // `run_scenario --write-builtin scenarios`; re-run that after
        // changing the registry.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
        for s in builtin_scenarios() {
            let path = dir.join(format!("{}.scn", s.name));
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("{}: {e} (regenerate with --write-builtin)", s.name));
            assert_eq!(text, s.render(), "{} file is stale", s.name);
            assert_eq!(Scenario::parse(&text).unwrap(), s, "{}", s.name);
        }
        // Count only `.scn` files: the directory also ships the
        // `sd-validate` expectation file(s).
        let on_disk = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "scn")
            })
            .count();
        assert_eq!(on_disk, builtin_scenarios().len(), "no orphan .scn files");
    }

    #[test]
    fn find_builtin_works() {
        assert!(find_builtin("bursty").is_some());
        assert!(find_builtin("nope").is_none());
    }

    #[test]
    fn bursty_is_outside_the_figure_binaries_envelope() {
        // The hand-coded binaries only run the paper presets: always
        // malleable_fraction = 1.0, never overridden batching. `bursty`
        // needs both knobs at once.
        let s = find_builtin("bursty").unwrap();
        assert!(s.slurm.malleable_fraction < 1.0);
        assert!(s.workload.batch_p.is_some());
        let out = execute(&expand(&s.at_scale(0.02))[0]).unwrap();
        assert!(out.result.outcomes.len() >= 300);
        assert_eq!(out.result.leftover_pending, 0);
    }

    #[test]
    fn fraction_sweep_expands_to_five_runs() {
        let s = find_builtin("malleable-fraction-sweep").unwrap();
        let pts = expand(&s);
        assert_eq!(pts.len(), 5);
        assert!(pts.iter().all(|p| p.variant.starts_with("malleable_fraction=")));
    }
}
