//! # sd-scenario — declarative experiments for the SD-Policy reproduction
//!
//! Experiments as *data*, not code: a scenario file declares the machine,
//! the workload source and its knobs, the policy and MAXSD variant, the
//! runtime model, SLURM-side configuration, and sweep axes whose
//! cross-product becomes a campaign. The `run_scenario` binary in
//! `sd-bench` executes campaigns over scoped worker threads and exports
//! deterministic JSON/CSV.
//!
//! * [`format`] — the tiny section/key-value text format (line-precise
//!   errors, no dependencies),
//! * [`scenario`] — the typed [`Scenario`] model: parse, validate, render
//!   (`parse(render(s)) == s`),
//! * [`compile`] — sweep expansion into [`RunPoint`]s and execution through
//!   the simulator,
//! * [`registry`] — built-in scenarios: the five paper workloads plus
//!   bursty / diurnal / mixed-malleability / oversubscription studies.
//!
//! ```
//! use sd_scenario::{expand, execute, Scenario};
//!
//! let text = "\
//! [scenario]
//! name = quick
//! scale = 0.02
//!
//! [workload]
//! source = ricc
//! batch_p = 0.6
//!
//! [slurm]
//! malleable_fraction = 0.5
//! ";
//! let scenario = Scenario::parse(text).unwrap();
//! assert_eq!(Scenario::parse(&scenario.render()).unwrap(), scenario);
//! let points = expand(&scenario);
//! assert_eq!(points.len(), 1);
//! let outcome = execute(&points[0]).unwrap();
//! assert_eq!(outcome.result.leftover_pending, 0);
//! ```

pub mod campaign;
pub mod compile;
pub mod format;
pub mod registry;
pub mod scenario;

pub use campaign::Campaign;
pub use compile::{baseline_point, execute, execute_traced, expand, RunError, RunPoint, ScenarioOutcome};
pub use format::ParseError;
pub use registry::{builtin_scenarios, find_builtin};
pub use scenario::{
    ArrivalKind, AvailBackendDecl, BackfillDecl, ClusterDecl, ClusterPreset, MaxSdDecl, ModelDecl,
    PolicyDecl, PolicyKindDecl, Scenario, SlurmDecl, SourceKind, SweepDecl, TenantQueueDecl,
    TenantsDecl, WorkloadDecl,
};
