//! Compiling a [`Scenario`] onto the simulator: sweep expansion into
//! concrete [`RunPoint`]s, and execution of one point through
//! `slurm_sim::run_trace` (or the app-bound / SWF-replay paths).

use crate::scenario::{
    ArrivalKind, AvailBackendDecl, BackfillDecl, ClusterPreset, ModelDecl, PolicyKindDecl,
    Scenario, SourceKind, TenantQueueDecl, TenantsDecl,
};
use cluster::ClusterSpec;
use drom::SharingFactor;
use sd_policy::{SdPolicy, SdPolicyConfig};
use slurm_sim::replay::{infer_cluster, replay_state};
use slurm_sim::{
    AppAwareModel, AvailBackendKind, BackfillMode, Controller, IdealModel, QueuePolicy, Quota,
    RateModel, SimResult, SimState, SlurmConfig, StaticBackfill, Tenant, TenantRegistry,
    WorstCaseModel,
};
use workload::{ArrivalModel, PaperWorkload};

/// One fully resolved run: a scenario with every sweep axis substituted
/// (`scenario.sweep` is empty) plus the human-readable axis assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPoint {
    pub scenario: Scenario,
    /// `seed=1 malleable_fraction=0.5 maxsd=10` — only swept axes appear;
    /// empty for sweep-less scenarios.
    pub variant: String,
}

/// Expands the sweep cross-product in a fixed order (seed, scale, sharing,
/// malleable fraction, MAXSD, backfill depth, arrival contrast, tenant
/// count, tenant skew, quota fraction, availability backend — outermost to
/// innermost), so campaign output ordering is deterministic.
pub fn expand(s: &Scenario) -> Vec<RunPoint> {
    use std::fmt::Write as _;
    let seeds: Vec<u64> = if s.sweep.seed.is_empty() {
        vec![s.seed]
    } else {
        s.sweep.seed.clone()
    };
    let scales: Vec<Option<f64>> = if s.sweep.scale.is_empty() {
        vec![s.scale]
    } else {
        s.sweep.scale.iter().map(|&v| Some(v)).collect()
    };
    let sharings: Vec<f64> = if s.sweep.sharing.is_empty() {
        vec![s.policy.sharing]
    } else {
        s.sweep.sharing.clone()
    };
    let fractions: Vec<f64> = if s.sweep.malleable_fraction.is_empty() {
        vec![s.slurm.malleable_fraction]
    } else {
        s.sweep.malleable_fraction.clone()
    };
    let maxsds = if s.sweep.maxsd.is_empty() {
        vec![s.policy.maxsd]
    } else {
        s.sweep.maxsd.clone()
    };
    let depths: Vec<Option<usize>> = if s.sweep.backfill_depth.is_empty() {
        vec![s.slurm.backfill_depth]
    } else {
        s.sweep.backfill_depth.iter().map(|&v| Some(v)).collect()
    };
    let contrasts: Vec<Option<f64>> = if s.sweep.day_night_contrast.is_empty() {
        vec![s.workload.day_night_contrast]
    } else {
        s.sweep.day_night_contrast.iter().map(|&v| Some(v)).collect()
    };
    let tenant_counts: Vec<Option<u32>> = if s.sweep.tenant_count.is_empty() {
        vec![None]
    } else {
        s.sweep.tenant_count.iter().map(|&v| Some(v)).collect()
    };
    let tenant_skews: Vec<Option<f64>> = if s.sweep.tenant_skew.is_empty() {
        vec![None]
    } else {
        s.sweep.tenant_skew.iter().map(|&v| Some(v)).collect()
    };
    let quota_fractions: Vec<Option<f64>> = if s.sweep.quota_fraction.is_empty() {
        vec![None]
    } else {
        s.sweep.quota_fraction.iter().map(|&v| Some(v)).collect()
    };
    let backends: Vec<Option<AvailBackendDecl>> = if s.sweep.avail_backend.is_empty() {
        vec![s.slurm.avail_backend]
    } else {
        s.sweep.avail_backend.iter().map(|&v| Some(v)).collect()
    };

    let mut out = Vec::with_capacity(s.sweep.run_count());
    for &seed in &seeds {
        for &scale in &scales {
            for &sharing in &sharings {
                for &fraction in &fractions {
                    for &maxsd in &maxsds {
                        for &depth in &depths {
                            for &contrast in &contrasts {
                                for &tcount in &tenant_counts {
                                    for &tskew in &tenant_skews {
                                        for &qf in &quota_fractions {
                                          for &backend in &backends {
                                            let mut resolved = s.clone();
                                            resolved.sweep = Default::default();
                                            resolved.seed = seed;
                                            resolved.scale = scale;
                                            resolved.policy.sharing = sharing;
                                            resolved.policy.maxsd = maxsd;
                                            resolved.slurm.malleable_fraction = fraction;
                                            resolved.slurm.backfill_depth = depth;
                                            resolved.slurm.avail_backend = backend;
                                            resolved.workload.day_night_contrast = contrast;
                                            if let Some(t) = resolved.tenants.as_mut() {
                                                if let Some(c) = tcount {
                                                    t.count = c;
                                                }
                                                if let Some(k) = tskew {
                                                    t.skew = k;
                                                }
                                                if let Some(f) = qf {
                                                    t.quota_fraction = f;
                                                }
                                            }
                                            let mut variant = String::new();
                                            let mut push = |part: String| {
                                                if !variant.is_empty() {
                                                    variant.push(' ');
                                                }
                                                variant.push_str(&part);
                                            };
                                            if !s.sweep.seed.is_empty() {
                                                push(format!("seed={seed}"));
                                            }
                                            if !s.sweep.scale.is_empty() {
                                                let mut p = String::new();
                                                let _ = write!(
                                                    p,
                                                    "scale={}",
                                                    scale.expect("swept scale is set")
                                                );
                                                push(p);
                                            }
                                            if !s.sweep.sharing.is_empty() {
                                                push(format!("sharing={sharing}"));
                                            }
                                            if !s.sweep.malleable_fraction.is_empty() {
                                                push(format!("malleable_fraction={fraction}"));
                                            }
                                            if !s.sweep.maxsd.is_empty() {
                                                push(format!("maxsd={maxsd}"));
                                            }
                                            if !s.sweep.backfill_depth.is_empty() {
                                                push(format!(
                                                    "backfill_depth={}",
                                                    depth.expect("swept depth is set")
                                                ));
                                            }
                                            if !s.sweep.day_night_contrast.is_empty() {
                                                push(format!(
                                                    "day_night_contrast={}",
                                                    contrast.expect("swept contrast is set")
                                                ));
                                            }
                                            if !s.sweep.tenant_count.is_empty() {
                                                push(format!(
                                                    "tenant_count={}",
                                                    tcount.expect("swept count is set")
                                                ));
                                            }
                                            if !s.sweep.tenant_skew.is_empty() {
                                                push(format!(
                                                    "tenant_skew={}",
                                                    tskew.expect("swept skew is set")
                                                ));
                                            }
                                            if !s.sweep.quota_fraction.is_empty() {
                                                push(format!(
                                                    "quota_fraction={}",
                                                    qf.expect("swept fraction is set")
                                                ));
                                            }
                                            if !s.sweep.avail_backend.is_empty() {
                                                push(format!(
                                                    "avail_backend={}",
                                                    backend.expect("swept backend is set")
                                                ));
                                            }
                                            out.push(RunPoint {
                                                scenario: resolved,
                                                variant,
                                            });
                                          }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Everything one executed run produced, plus the labels the campaign
/// exporters need.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    pub scenario: String,
    pub variant: String,
    /// `static`, `MAXSD 10`, `DynAVGSD`, …
    pub policy_label: String,
    pub seed: u64,
    pub scale: f64,
    pub total_cores: u64,
    pub result: SimResult,
}

/// Why a run point could not execute (I/O or trace problems; scenario
/// validation itself happens at parse time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError(pub String);

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RunError {}

fn rate_model(decl: ModelDecl) -> Box<dyn RateModel> {
    match decl {
        ModelDecl::Ideal => Box::new(IdealModel),
        ModelDecl::WorstCase => Box::new(WorstCaseModel),
        ModelDecl::AppAware => Box::new(AppAwareModel),
    }
}

/// The SLURM config for a resolved scenario. Mirrors the figure binaries'
/// heuristic (EASY backfill once a Curie-scale run gets big) unless the
/// scenario pins the mode explicitly.
fn slurm_config(s: &Scenario, big_trace: bool) -> SlurmConfig {
    let mut cfg = if big_trace {
        SlurmConfig::large_scale()
    } else {
        SlurmConfig::default()
    };
    if let Some(mode) = s.slurm.backfill {
        cfg.backfill_mode = match mode {
            BackfillDecl::Easy => BackfillMode::Easy,
            BackfillDecl::Conservative => BackfillMode::Conservative,
        };
    }
    if let Some(depth) = s.slurm.backfill_depth {
        cfg.backfill_depth = depth;
    }
    if let Some(ranks) = s.slurm.ranks_per_node {
        cfg.ranks_per_node = ranks;
    }
    if let Some(backend) = s.slurm.avail_backend {
        cfg.avail_backend = match backend {
            AvailBackendDecl::Profile => AvailBackendKind::Profile,
            AvailBackendDecl::SlotTree => AvailBackendKind::SlotTree,
        };
    }
    cfg.malleable_fraction = s.slurm.malleable_fraction;
    // The malleability draw forks from the scenario seed so seed sweeps
    // re-draw which jobs are malleable, not just their shapes.
    cfg.malleable_seed = s.seed ^ 0xD20;
    cfg
}

/// Installs a resolved `[tenants]` declaration into the SLURM config:
/// `count` equal-weight tenants and the declared queue policy.
///
/// Budgets are sized against the generated trace, using the simulator's own
/// whole-node rounding: with `quota_fraction = f < 1`, tenant `t` may start
/// jobs worth `⌈f × Σ req_nodes × req_time⌉` node-seconds over its own jobs.
/// `f ≥ 1` leaves every quota unlimited, so the tenanted run admits exactly
/// the untenanted schedule (the equivalence tests pin this).
fn apply_tenancy(cfg: &mut SlurmConfig, t: &TenantsDecl, trace: &swf::Trace, spec: &ClusterSpec) {
    cfg.queue_policy = match t.queue {
        TenantQueueDecl::Fifo => QueuePolicy::Fifo,
        TenantQueueDecl::FairShare => QueuePolicy::FairShare {
            half_life: t.half_life,
        },
    };
    if t.quota_fraction >= 1.0 {
        cfg.tenants = TenantRegistry::equal_weights(t.count, Quota::UNLIMITED);
        return;
    }
    let mut demand = vec![0u64; t.count as usize + 1];
    for j in &trace.jobs {
        let (Some(procs), Some(runtime)) = (j.procs(), j.runtime()) else {
            continue;
        };
        if runtime == 0 || j.submit < 0 {
            continue; // the simulator drops these records too
        }
        let user = j.user.max(0) as usize;
        if user == 0 || user > t.count as usize {
            continue;
        }
        let nodes = u64::from(spec.nodes_for_procs(procs).max(1));
        let req_time = j.requested_time().unwrap_or(runtime).max(runtime);
        demand[user] += nodes * req_time;
    }
    let mut registry = TenantRegistry::new();
    for id in 1..=t.count {
        let budget = (t.quota_fraction * demand[id as usize] as f64).ceil() as u64;
        registry.add(Tenant {
            quota: Quota {
                node_seconds: Some(budget),
                max_running_width: None,
            },
            ..Tenant::unlimited(id, 0)
        });
    }
    cfg.tenants = registry;
}

/// A preset machine. `nodes = None` keeps the preset's native node count
/// (full RICC/Curie, the fixed 49-node MN4 subset, 1024 MN4 nodes).
fn preset_spec(preset: ClusterPreset, nodes: Option<u32>) -> Option<ClusterSpec> {
    let mut spec = match preset {
        ClusterPreset::Auto => return None,
        ClusterPreset::Mn4 => ClusterSpec::marenostrum4(1024),
        ClusterPreset::Ricc => ClusterSpec::ricc(),
        ClusterPreset::Curie => ClusterSpec::cea_curie(),
        ClusterPreset::Mn4RealRun => ClusterSpec::mn4_real_run(),
    };
    if let Some(n) = nodes {
        spec.nodes = n;
    }
    Some(spec)
}

fn finish<S: slurm_sim::Scheduler>(
    state: SimState,
    scheduler: S,
    s: &Scenario,
    variant: &str,
    scale: f64,
    total_cores: u64,
) -> ScenarioOutcome {
    let result = Controller::new(state, scheduler).run();
    ScenarioOutcome {
        scenario: s.name.clone(),
        variant: variant.to_string(),
        policy_label: match s.policy.kind {
            PolicyKindDecl::Static => "static".to_string(),
            PolicyKindDecl::Sd => s.policy.maxsd.to_policy().label(),
        },
        seed: s.seed,
        scale,
        total_cores,
        result,
    }
}

fn run_state(
    mut state: SimState,
    ring: Option<std::sync::Arc<slurm_sim::TraceRing>>,
    s: &Scenario,
    variant: &str,
    scale: f64,
    cores: u64,
) -> ScenarioOutcome {
    if let Some(ring) = ring {
        state.attach_trace(ring);
    }
    match s.policy.kind {
        PolicyKindDecl::Static => finish(state, StaticBackfill, s, variant, scale, cores),
        PolicyKindDecl::Sd => {
            let cfg = SdPolicyConfig {
                max_slowdown: s.policy.maxsd.to_policy(),
                ..SdPolicyConfig::default()
            };
            finish(state, SdPolicy::new(cfg), s, variant, scale, cores)
        }
    }
}

/// The static-backfill twin of a run point: the same workload, machine,
/// seed and scale under [`PolicyKindDecl::Static`]. Axes static backfill
/// never reads — the MAXSD cut-off, the SharingFactor (only `co_launch`
/// consults it) and the malleable fraction (it only flags jobs the static
/// scheduler treats identically) — are canonicalised, so every variant of a
/// `maxsd`/`sharing`/`malleable_fraction` sweep shares one baseline run.
/// The availability backend is canonicalised away too: both backends
/// produce bit-identical results, so an `avail_backend` sweep shares one
/// baseline. Campaign exports normalise each row against its twin's result.
pub fn baseline_point(p: &RunPoint) -> RunPoint {
    let mut s = p.scenario.clone();
    s.policy.kind = PolicyKindDecl::Static;
    s.policy.maxsd = crate::scenario::MaxSdDecl::Dyn;
    s.policy.sharing = 0.5;
    s.slurm.malleable_fraction = 1.0;
    s.slurm.avail_backend = None;
    RunPoint {
        scenario: s,
        // The variant tag is canonicalised away too: two variants that differ
        // only in swept policy axes compare equal and share the baseline run.
        variant: String::new(),
    }
}

/// Executes one resolved run point. Deterministic: the same point always
/// produces the same [`SimResult`].
pub fn execute(p: &RunPoint) -> Result<ScenarioOutcome, RunError> {
    execute_inner(p, None)
}

/// Like [`execute`] but with decision tracing armed: every scheduler
/// decision of the run is appended to `ring` (`run_scenario --trace`).
/// The virtual-time view of the stream is as deterministic as the run.
pub fn execute_traced(
    p: &RunPoint,
    ring: std::sync::Arc<slurm_sim::TraceRing>,
) -> Result<ScenarioOutcome, RunError> {
    execute_inner(p, Some(ring))
}

fn execute_inner(
    p: &RunPoint,
    ring: Option<std::sync::Arc<slurm_sim::TraceRing>>,
) -> Result<ScenarioOutcome, RunError> {
    let s = &p.scenario;
    let scale = s.effective_scale();
    let sharing = SharingFactor::new(s.policy.sharing);
    let model = rate_model(s.policy.model);

    match s.workload.source {
        SourceKind::RealRun => {
            let apps = PaperWorkload::generate_apps(s.seed);
            let spec = ClusterSpec::mn4_real_run();
            let cores = spec.total_cores();
            let cfg = slurm_config(s, false);
            let state = SimState::with_apps(spec, cfg, &apps, model, sharing);
            Ok(run_state(state, ring.clone(), s, &p.variant, scale, cores))
        }
        SourceKind::Swf => {
            let path = s.workload.path.as_deref().expect("validated at parse time");
            let (trace, _skipped) = swf::parse_file(std::path::Path::new(path))
                .map_err(|e| RunError(format!("{}: {e:?}", s.name)))?;
            let mut spec = preset_spec(s.cluster.preset, s.cluster.nodes)
                .unwrap_or_else(|| infer_cluster(&trace));
            if s.cluster.preset == ClusterPreset::Auto {
                if let Some(n) = s.cluster.nodes {
                    spec.nodes = n;
                }
            }
            let cores = spec.total_cores();
            let big = trace.len() > 50_000;
            let cfg = slurm_config(s, big);
            let (state, kept) = replay_state(trace, spec, cfg, model, sharing);
            if kept == 0 {
                return Err(RunError(format!(
                    "{}: no simulatable jobs survived cleaning of {path}",
                    s.name
                )));
            }
            Ok(run_state(state, ring.clone(), s, &p.variant, scale, cores))
        }
        _ => {
            let w = s
                .workload
                .source
                .paper_workload()
                .expect("synthetic sources map to paper workloads");
            let mut gen = w.model(scale);
            let decl = &s.workload;
            if let Some(n) = decl.jobs {
                gen = gen.with_jobs(n);
            }
            if let Some(kind) = decl.arrivals {
                let mean = decl
                    .mean_interarrival
                    .unwrap_or(gen.arrivals.mean_interarrival);
                gen = gen.with_arrivals(match kind {
                    ArrivalKind::Anl => ArrivalModel::anl(mean),
                    ArrivalKind::Uniform => ArrivalModel::uniform(mean),
                    ArrivalKind::DayNight => {
                        ArrivalModel::day_night(mean, decl.day_night_contrast.unwrap_or(3.0))
                    }
                });
            } else if let Some(mean) = decl.mean_interarrival {
                gen = gen.with_mean_interarrival(mean);
            }
            if let Some(wf) = decl.weekend_factor {
                let arrivals = gen.arrivals.clone().with_weekend_factor(wf);
                gen = gen.with_arrivals(arrivals);
            }
            if decl.batch_p.is_some() || decl.batch_mean.is_some() {
                let (p_, m_) = (
                    decl.batch_p.unwrap_or(gen.batch_p),
                    decl.batch_mean.unwrap_or(gen.batch_mean),
                );
                gen = gen.with_batching(p_, m_);
            }
            if let Some(t) = &s.tenants {
                gen = gen.with_tenant_mix(t.count, t.skew);
            }

            // Presets default to the generator's (scaled) machine size so a
            // preset swap changes the node architecture, not the capacity.
            let mut spec =
                preset_spec(s.cluster.preset, Some(s.cluster.nodes.unwrap_or(gen.system_nodes)))
                    .unwrap_or_else(|| w.cluster(scale));
            if let Some(n) = s.cluster.nodes {
                spec.nodes = n;
            }
            // Express the machine in the generator's node units so every
            // sampled job fits it, whatever preset/override was chosen.
            let capacity_nodes =
                (spec.total_cores() / gen.cores_per_node.max(1) as u64).max(1) as u32;
            gen = gen.with_system_nodes(capacity_nodes);

            let cores = spec.total_cores();
            let big = matches!(w, PaperWorkload::W4Curie) && scale > 0.15;
            let trace = gen.generate(s.seed);
            let mut cfg = slurm_config(s, big);
            if let Some(t) = &s.tenants {
                apply_tenancy(&mut cfg, t, &trace, &spec);
            }
            let state = SimState::new(spec, cfg, &trace, model, sharing);
            Ok(run_state(state, ring.clone(), s, &p.variant, scale, cores))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::MaxSdDecl;

    fn tiny(source: SourceKind) -> Scenario {
        let mut s = Scenario::new("t", source);
        s.scale = Some(0.02);
        s
    }

    #[test]
    fn expand_without_sweep_is_one_point() {
        let s = tiny(SourceKind::Ricc);
        let pts = expand(&s);
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].variant, "");
        assert_eq!(pts[0].scenario, s);
    }

    #[test]
    fn expand_cross_product_and_labels() {
        let mut s = tiny(SourceKind::Ricc);
        s.sweep.seed = vec![1, 2];
        s.sweep.malleable_fraction = vec![0.0, 1.0];
        s.sweep.maxsd = vec![MaxSdDecl::Value(5.0), MaxSdDecl::Infinite, MaxSdDecl::Dyn];
        let pts = expand(&s);
        assert_eq!(pts.len(), 2 * 2 * 3);
        assert_eq!(pts[0].variant, "seed=1 malleable_fraction=0 maxsd=5");
        let last = pts.last().unwrap();
        assert_eq!(last.variant, "seed=2 malleable_fraction=1 maxsd=dyn");
        assert_eq!(last.scenario.seed, 2);
        assert_eq!(last.scenario.slurm.malleable_fraction, 1.0);
        assert_eq!(last.scenario.policy.maxsd, MaxSdDecl::Dyn);
        assert!(last.scenario.sweep.is_empty(), "resolved points carry no sweep");
        // Every point is distinct.
        let mut variants: Vec<&str> = pts.iter().map(|p| p.variant.as_str()).collect();
        variants.sort();
        variants.dedup();
        assert_eq!(variants.len(), pts.len());
    }

    #[test]
    fn executes_synthetic_run_end_to_end() {
        let s = tiny(SourceKind::Ricc);
        let out = execute(&expand(&s)[0]).unwrap();
        assert!(out.result.outcomes.len() >= 300);
        assert_eq!(out.result.leftover_pending, 0);
        assert_eq!(out.policy_label, "DynAVGSD");
        assert!(out.total_cores > 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let mut s = tiny(SourceKind::Ricc);
        s.workload.batch_p = Some(0.6);
        s.slurm.malleable_fraction = 0.5;
        let p = &expand(&s)[0];
        let a = execute(p).unwrap();
        let b = execute(p).unwrap();
        assert_eq!(a.result.outcomes, b.result.outcomes);
        assert_eq!(a.result.energy_joules, b.result.energy_joules);
    }

    #[test]
    fn malleable_fraction_zero_disables_malleability() {
        let mut s = tiny(SourceKind::Ricc);
        s.slurm.malleable_fraction = 0.0;
        let out = execute(&expand(&s)[0]).unwrap();
        assert_eq!(out.result.stats.started_malleable, 0);
        let mut s1 = tiny(SourceKind::Ricc);
        s1.slurm.malleable_fraction = 1.0;
        let out1 = execute(&expand(&s1)[0]).unwrap();
        assert!(out1.result.stats.started_malleable > 0);
    }

    #[test]
    fn static_policy_runs_baseline() {
        let mut s = tiny(SourceKind::Ricc);
        s.policy.kind = PolicyKindDecl::Static;
        let out = execute(&expand(&s)[0]).unwrap();
        assert_eq!(out.policy_label, "static");
        assert_eq!(out.result.stats.started_malleable, 0);
    }

    #[test]
    fn cluster_override_keeps_jobs_fitting() {
        let mut s = tiny(SourceKind::Ricc);
        s.cluster.nodes = Some(24);
        let out = execute(&expand(&s)[0]).unwrap();
        assert_eq!(out.total_cores, 24 * 8);
        assert_eq!(out.result.leftover_pending, 0, "every job fits and runs");
    }

    #[test]
    fn swf_source_replays_a_file() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let path = dir.join("../../tests/fixtures/tiny.swf");
        let mut s = Scenario::new("replay", SourceKind::Swf);
        s.workload.path = Some(path.to_string_lossy().into_owned());
        let out = execute(&expand(&s)[0]).unwrap();
        assert!(out.result.outcomes.len() >= 10);
        assert_eq!(out.result.leftover_pending, 0);
    }

    #[test]
    fn swf_preset_without_nodes_uses_native_machine_size() {
        // Regression: `preset = ricc` with no `nodes` key used to build a
        // 0-node cluster on the SWF path.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let path = dir.join("../../tests/fixtures/tiny.swf");
        let mut s = Scenario::new("replay-preset", SourceKind::Swf);
        s.workload.path = Some(path.to_string_lossy().into_owned());
        s.cluster.preset = ClusterPreset::Ricc;
        let out = execute(&expand(&s)[0]).unwrap();
        assert_eq!(out.total_cores, 1024 * 8, "full RICC machine");
        assert_eq!(out.result.leftover_pending, 0);
        // And an explicit node count still overrides the preset.
        let mut s2 = s.clone();
        s2.name = "replay-preset-sized".into();
        s2.cluster.nodes = Some(32);
        let out2 = execute(&expand(&s2)[0]).unwrap();
        assert_eq!(out2.total_cores, 32 * 8);
    }

    #[test]
    fn expand_tenant_axes() {
        let mut s = tiny(SourceKind::Ricc);
        s.tenants = Some(TenantsDecl::new(2));
        s.sweep.tenant_count = vec![2, 4];
        s.sweep.quota_fraction = vec![0.5, 1.0];
        let pts = expand(&s);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].variant, "tenant_count=2 quota_fraction=0.5");
        let last = pts.last().unwrap();
        assert_eq!(last.variant, "tenant_count=4 quota_fraction=1");
        let t = last.scenario.tenants.as_ref().unwrap();
        assert_eq!(t.count, 4);
        assert_eq!(t.quota_fraction, 1.0);
    }

    #[test]
    fn tenanted_unlimited_quota_preserves_the_schedule() {
        let base = execute(&expand(&tiny(SourceKind::Ricc))[0]).unwrap();
        let mut s = tiny(SourceKind::Ricc);
        s.tenants = Some(TenantsDecl::new(4));
        let out = execute(&expand(&s)[0]).unwrap();
        // Unlimited quotas never bind and FIFO order is unchanged, so only
        // the tenant labels differ from the untenanted run.
        assert_eq!(out.result.stats.quota_skipped, 0);
        assert_eq!(out.result.outcomes.len(), base.result.outcomes.len());
        for (a, b) in base.result.outcomes.iter().zip(&out.result.outcomes) {
            assert_eq!(
                (a.id, a.submit, a.start, a.end, a.nodes),
                (b.id, b.submit, b.start, b.end, b.nodes)
            );
        }
        let tenants: std::collections::BTreeSet<u32> =
            out.result.outcomes.iter().map(|o| o.tenant).collect();
        assert!(tenants.iter().all(|&t| (1..=4).contains(&t)), "{tenants:?}");
        assert!(tenants.len() > 1, "the mix spreads jobs over tenants");
    }

    #[test]
    fn binding_quota_blocks_jobs_and_counts_skips() {
        let mut s = tiny(SourceKind::Ricc);
        let mut t = TenantsDecl::new(4);
        t.quota_fraction = 0.2;
        s.tenants = Some(t);
        let out = execute(&expand(&s)[0]).unwrap();
        assert!(out.result.stats.quota_skipped > 0, "quota never bound");
        assert!(
            out.result.leftover_pending > 0,
            "over-budget jobs stay pending (charges are never refunded)"
        );
    }

    #[test]
    fn fair_share_tenants_execute_deterministically() {
        let mut s = tiny(SourceKind::Ricc);
        let mut t = TenantsDecl::new(3);
        t.skew = 1.5;
        t.queue = TenantQueueDecl::FairShare;
        s.tenants = Some(t);
        let p = &expand(&s)[0];
        let a = execute(p).unwrap();
        let b = execute(p).unwrap();
        assert_eq!(a.result.outcomes, b.result.outcomes);
        assert_eq!(a.result.energy_joules, b.result.energy_joules);
        assert_eq!(a.result.leftover_pending, 0);
    }

    #[test]
    fn expand_avail_backend_axis() {
        let mut s = tiny(SourceKind::Ricc);
        s.sweep.seed = vec![1, 2];
        s.sweep.avail_backend = vec![AvailBackendDecl::Profile, AvailBackendDecl::SlotTree];
        let pts = expand(&s);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].variant, "seed=1 avail_backend=profile");
        assert_eq!(pts[1].variant, "seed=1 avail_backend=slottree");
        assert_eq!(
            pts[1].scenario.slurm.avail_backend,
            Some(AvailBackendDecl::SlotTree)
        );
        // Baselines ignore the backend axis: both points share one twin.
        assert_eq!(baseline_point(&pts[0]), baseline_point(&pts[1]));
    }

    #[test]
    fn avail_backends_produce_identical_results() {
        let mut s = tiny(SourceKind::Ricc);
        s.sweep.avail_backend = vec![AvailBackendDecl::Profile, AvailBackendDecl::SlotTree];
        let pts = expand(&s);
        let a = execute(&pts[0]).unwrap();
        let b = execute(&pts[1]).unwrap();
        assert_eq!(a.result.outcomes, b.result.outcomes);
        assert_eq!(a.result.energy_joules, b.result.energy_joules);
        assert_eq!(a.result.stats.started_malleable, b.result.stats.started_malleable);
    }

    #[test]
    fn missing_swf_is_a_run_error() {
        let mut s = Scenario::new("gone", SourceKind::Swf);
        s.workload.path = Some("/nonexistent/trace.swf".into());
        assert!(execute(&expand(&s)[0]).is_err());
    }
}
