//! The typed scenario model: what an experiment *is*, independent of any
//! binary. Parsed from the [`crate::format`] text form, rendered back
//! canonically (`parse(render(s)) == s`), validated with line-precise
//! errors, and compiled onto the simulator by [`crate::compile`].

use crate::format::{
    parse_f64, parse_list, parse_raw, parse_u32, parse_u64, parse_usize, render_list, ParseError,
    RawEntry, RawSection,
};
use std::fmt;
use workload::PaperWorkload;

/// Which machine preset a scenario runs on. `Auto` derives the machine from
/// the workload source (the paper's Table 1 pairing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterPreset {
    #[default]
    Auto,
    /// MareNostrum4-like 48-core nodes.
    Mn4,
    /// RICC-like 8-core nodes.
    Ricc,
    /// CEA-Curie-like 16-core nodes.
    Curie,
    /// The 49-node MN4 real-run subset.
    Mn4RealRun,
}

impl ClusterPreset {
    fn parse(e: &RawEntry) -> Result<Self, ParseError> {
        match e.value.as_str() {
            "auto" => Ok(ClusterPreset::Auto),
            "mn4" => Ok(ClusterPreset::Mn4),
            "ricc" => Ok(ClusterPreset::Ricc),
            "curie" => Ok(ClusterPreset::Curie),
            "mn4_real_run" => Ok(ClusterPreset::Mn4RealRun),
            v => Err(ParseError::new(
                e.line,
                format!("`preset`: unknown cluster preset `{v}` (auto|mn4|ricc|curie|mn4_real_run)"),
            )),
        }
    }

    fn render(self) -> &'static str {
        match self {
            ClusterPreset::Auto => "auto",
            ClusterPreset::Mn4 => "mn4",
            ClusterPreset::Ricc => "ricc",
            ClusterPreset::Curie => "curie",
            ClusterPreset::Mn4RealRun => "mn4_real_run",
        }
    }
}

/// Machine declaration: a preset plus an optional node-count override.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterDecl {
    pub preset: ClusterPreset,
    pub nodes: Option<u32>,
}

/// Where the jobs come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Cirne model, user estimates (paper Workload 1).
    Cirne,
    /// Cirne model, exact estimates (Workload 2).
    CirneIdeal,
    /// RICC-like synthetic trace (Workload 3).
    Ricc,
    /// CEA-Curie-like synthetic trace (Workload 4).
    Curie,
    /// The real-run application workload (Workload 5).
    RealRun,
    /// Replay a genuine SWF file (requires `path`).
    Swf,
}

impl SourceKind {
    fn parse(e: &RawEntry) -> Result<Self, ParseError> {
        Self::parse_str(&e.value, e.line)
    }

    /// Parses the `source` vocabulary from a bare string (shared with the
    /// `sd-validate` expectation files).
    pub fn parse_str(v: &str, line: usize) -> Result<Self, ParseError> {
        match v {
            "cirne" => Ok(SourceKind::Cirne),
            "cirne_ideal" => Ok(SourceKind::CirneIdeal),
            "ricc" => Ok(SourceKind::Ricc),
            "curie" => Ok(SourceKind::Curie),
            "real_run" => Ok(SourceKind::RealRun),
            "swf" => Ok(SourceKind::Swf),
            v => Err(ParseError::new(
                line,
                format!(
                    "`source`: unknown workload source `{v}` \
                     (cirne|cirne_ideal|ricc|curie|real_run|swf)"
                ),
            )),
        }
    }

    fn render(self) -> &'static str {
        match self {
            SourceKind::Cirne => "cirne",
            SourceKind::CirneIdeal => "cirne_ideal",
            SourceKind::Ricc => "ricc",
            SourceKind::Curie => "curie",
            SourceKind::RealRun => "real_run",
            SourceKind::Swf => "swf",
        }
    }

    /// The paper workload backing a synthetic source (None for SWF replay).
    pub fn paper_workload(self) -> Option<PaperWorkload> {
        match self {
            SourceKind::Cirne => Some(PaperWorkload::W1Cirne),
            SourceKind::CirneIdeal => Some(PaperWorkload::W2CirneIdeal),
            SourceKind::Ricc => Some(PaperWorkload::W3Ricc),
            SourceKind::Curie => Some(PaperWorkload::W4Curie),
            SourceKind::RealRun => Some(PaperWorkload::W5RealRun),
            SourceKind::Swf => None,
        }
    }
}

/// Arrival-pattern override for synthetic sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// The source's native pattern (ANL daily cycle).
    Anl,
    /// Constant-rate Poisson.
    Uniform,
    /// Square-wave day/night cycle (see `day_night_contrast`).
    DayNight,
}

impl ArrivalKind {
    fn parse(e: &RawEntry) -> Result<Self, ParseError> {
        match e.value.as_str() {
            "anl" => Ok(ArrivalKind::Anl),
            "uniform" => Ok(ArrivalKind::Uniform),
            "day_night" => Ok(ArrivalKind::DayNight),
            v => Err(ParseError::new(
                e.line,
                format!("`arrivals`: unknown pattern `{v}` (anl|uniform|day_night)"),
            )),
        }
    }

    fn render(self) -> &'static str {
        match self {
            ArrivalKind::Anl => "anl",
            ArrivalKind::Uniform => "uniform",
            ArrivalKind::DayNight => "day_night",
        }
    }
}

/// Workload declaration: source plus optional generator overrides. The
/// overrides only apply to synthetic sources; `path` only to SWF replay.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDecl {
    pub source: SourceKind,
    /// SWF file path (required iff `source = swf`).
    pub path: Option<String>,
    pub jobs: Option<usize>,
    pub mean_interarrival: Option<f64>,
    pub arrivals: Option<ArrivalKind>,
    /// Day/night intensity ratio (only with `arrivals = day_night`).
    pub day_night_contrast: Option<f64>,
    pub weekend_factor: Option<f64>,
    pub batch_p: Option<f64>,
    pub batch_mean: Option<f64>,
}

impl WorkloadDecl {
    pub fn new(source: SourceKind) -> WorkloadDecl {
        WorkloadDecl {
            source,
            path: None,
            jobs: None,
            mean_interarrival: None,
            arrivals: None,
            day_night_contrast: None,
            weekend_factor: None,
            batch_p: None,
            batch_mean: None,
        }
    }

    fn has_generator_tweaks(&self) -> bool {
        self.jobs.is_some()
            || self.mean_interarrival.is_some()
            || self.arrivals.is_some()
            || self.day_night_contrast.is_some()
            || self.weekend_factor.is_some()
            || self.batch_p.is_some()
            || self.batch_mean.is_some()
    }
}

/// The MAX_SLOWDOWN cut-off in declaration form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxSdDecl {
    Value(f64),
    Infinite,
    Dyn,
}

impl MaxSdDecl {
    /// Parses the `maxsd` vocabulary (`number | inf | dyn`); shared with the
    /// `sd-validate` expectation files.
    pub fn parse_str(v: &str, line: usize) -> Result<Self, ParseError> {
        match v {
            "inf" => Ok(MaxSdDecl::Infinite),
            "dyn" => Ok(MaxSdDecl::Dyn),
            v => {
                let x: f64 = v.parse().map_err(|_| {
                    ParseError::new(line, format!("`maxsd`: expected a number, `inf` or `dyn`, got `{v}`"))
                })?;
                if !(x > 1.0 && x.is_finite()) {
                    return Err(ParseError::new(
                        line,
                        format!("`maxsd`: cut-off must be a finite number > 1, got {x}"),
                    ));
                }
                Ok(MaxSdDecl::Value(x))
            }
        }
    }

    /// Converts to the policy crate's cut-off type.
    pub fn to_policy(self) -> sd_policy::MaxSlowdown {
        match self {
            MaxSdDecl::Value(v) => sd_policy::MaxSlowdown::Static(v),
            MaxSdDecl::Infinite => sd_policy::MaxSlowdown::Infinite,
            MaxSdDecl::Dyn => sd_policy::MaxSlowdown::DynAvg,
        }
    }
}

impl fmt::Display for MaxSdDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxSdDecl::Value(v) => write!(f, "{v}"),
            MaxSdDecl::Infinite => write!(f, "inf"),
            MaxSdDecl::Dyn => write!(f, "dyn"),
        }
    }
}

/// Which scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKindDecl {
    /// Static backfill baseline.
    Static,
    /// The SD-Policy with a MAXSD cut-off.
    Sd,
}

/// Which runtime model drives malleable execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelDecl {
    Ideal,
    WorstCase,
    AppAware,
}

impl ModelDecl {
    fn parse(e: &RawEntry) -> Result<Self, ParseError> {
        Self::parse_str(&e.value, e.line)
    }

    /// Parses the `model` vocabulary from a bare string (shared with the
    /// `sd-validate` expectation files).
    pub fn parse_str(v: &str, line: usize) -> Result<Self, ParseError> {
        match v {
            "ideal" => Ok(ModelDecl::Ideal),
            "worst_case" => Ok(ModelDecl::WorstCase),
            "app_aware" => Ok(ModelDecl::AppAware),
            v => Err(ParseError::new(
                line,
                format!("`model`: unknown runtime model `{v}` (ideal|worst_case|app_aware)"),
            )),
        }
    }

    fn render(self) -> &'static str {
        match self {
            ModelDecl::Ideal => "ideal",
            ModelDecl::WorstCase => "worst_case",
            ModelDecl::AppAware => "app_aware",
        }
    }
}

/// Scheduler + runtime-model declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDecl {
    pub kind: PolicyKindDecl,
    pub maxsd: MaxSdDecl,
    pub model: ModelDecl,
    /// SharingFactor in `[0, 1)`.
    pub sharing: f64,
}

impl Default for PolicyDecl {
    fn default() -> Self {
        PolicyDecl {
            kind: PolicyKindDecl::Sd,
            maxsd: MaxSdDecl::Dyn,
            model: ModelDecl::Ideal,
            sharing: 0.5,
        }
    }
}

/// Backfill planner choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackfillDecl {
    Easy,
    Conservative,
}

/// Availability-backend choice (DESIGN.md §13). Results are bit-identical
/// either way; the knob selects the data structure the pass queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AvailBackendDecl {
    /// The step-function availability profile (two flat vectors).
    #[default]
    Profile,
    /// The OAR-style slot tree (segment-tree descents over the slots).
    SlotTree,
}

impl AvailBackendDecl {
    fn parse(e: &RawEntry) -> Result<Self, ParseError> {
        Self::parse_str(&e.value, e.line)
    }

    /// Parses the `avail_backend` vocabulary from a bare string (shared
    /// with the sweep-axis list items and the CLI `--backend` flags).
    pub fn parse_str(v: &str, line: usize) -> Result<Self, ParseError> {
        match v {
            "profile" => Ok(AvailBackendDecl::Profile),
            "slottree" => Ok(AvailBackendDecl::SlotTree),
            v => Err(ParseError::new(
                line,
                format!("`avail_backend`: unknown backend `{v}` (profile|slottree)"),
            )),
        }
    }

    fn render(self) -> &'static str {
        match self {
            AvailBackendDecl::Profile => "profile",
            AvailBackendDecl::SlotTree => "slottree",
        }
    }
}

impl fmt::Display for AvailBackendDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.render())
    }
}

/// SLURM-side knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SlurmDecl {
    pub backfill: Option<BackfillDecl>,
    pub backfill_depth: Option<usize>,
    /// Fraction of jobs that are malleable, in `[0, 1]`.
    pub malleable_fraction: f64,
    pub ranks_per_node: Option<u32>,
    /// None → the simulator default ([`AvailBackendDecl::Profile`]).
    pub avail_backend: Option<AvailBackendDecl>,
}

impl Default for SlurmDecl {
    fn default() -> Self {
        SlurmDecl {
            backfill: None,
            backfill_depth: None,
            malleable_fraction: 1.0,
            ranks_per_node: None,
            avail_backend: None,
        }
    }
}

/// How the backfill pass orders the pending queue, in declaration form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TenantQueueDecl {
    /// Submit order (SLURM default priority).
    #[default]
    Fifo,
    /// Usage-decayed fair-share priority.
    FairShare,
}

impl TenantQueueDecl {
    fn parse(e: &RawEntry) -> Result<Self, ParseError> {
        match e.value.as_str() {
            "fifo" => Ok(TenantQueueDecl::Fifo),
            "fair_share" => Ok(TenantQueueDecl::FairShare),
            v => Err(ParseError::new(
                e.line,
                format!("`queue`: unknown queue policy `{v}` (fifo|fair_share)"),
            )),
        }
    }

    fn render(self) -> &'static str {
        match self {
            TenantQueueDecl::Fifo => "fifo",
            TenantQueueDecl::FairShare => "fair_share",
        }
    }
}

/// Fair-share decay half-life default: one day, the classic SLURM
/// `PriorityDecayHalfLife` starting point.
pub const DEFAULT_HALF_LIFE: u64 = 86_400;

/// Multi-tenancy declaration: the tenant population stamped onto the
/// synthetic trace, the per-tenant quota, and the queue order.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantsDecl {
    /// Number of equal-weight tenants `1..=count` (project 0).
    pub count: u32,
    /// Zipf popularity exponent over tenants (`0` = uniform): tenant `k`
    /// draws jobs with weight `k^-skew`.
    pub skew: f64,
    /// Each tenant's node-second budget as a fraction of its total requested
    /// node-seconds in the generated trace; `≥ 1` (the default) means
    /// unlimited — every job admissible, quotas never bind.
    pub quota_fraction: f64,
    pub queue: TenantQueueDecl,
    /// Fair-share usage decay half-life in seconds (`0` disables decay).
    pub half_life: u64,
}

impl TenantsDecl {
    /// `count` equal tenants, uniform popularity, unlimited quota, FIFO.
    pub fn new(count: u32) -> TenantsDecl {
        TenantsDecl {
            count,
            skew: 0.0,
            quota_fraction: 1.0,
            queue: TenantQueueDecl::Fifo,
            half_life: DEFAULT_HALF_LIFE,
        }
    }
}

/// The sweep axes: each non-empty axis multiplies the campaign's run count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepDecl {
    pub malleable_fraction: Vec<f64>,
    pub maxsd: Vec<MaxSdDecl>,
    pub seed: Vec<u64>,
    pub scale: Vec<f64>,
    pub sharing: Vec<f64>,
    /// SLURM `bf_max_job_test` values (scheduler-cost axis).
    pub backfill_depth: Vec<usize>,
    /// Day/night intensity ratios (arrival-contrast axis; requires
    /// `arrivals = day_night`).
    pub day_night_contrast: Vec<f64>,
    /// Tenant population sizes (requires a `[tenants]` section).
    pub tenant_count: Vec<u32>,
    /// Zipf popularity exponents (requires a `[tenants]` section).
    pub tenant_skew: Vec<f64>,
    /// Per-tenant budget fractions (requires a `[tenants]` section).
    pub quota_fraction: Vec<f64>,
    /// Availability backends (scheduler-cost axis; results are
    /// bit-identical across values, only the wall time moves).
    pub avail_backend: Vec<AvailBackendDecl>,
}

impl SweepDecl {
    pub fn is_empty(&self) -> bool {
        self.malleable_fraction.is_empty()
            && self.maxsd.is_empty()
            && self.seed.is_empty()
            && self.scale.is_empty()
            && self.sharing.is_empty()
            && self.backfill_depth.is_empty()
            && self.day_night_contrast.is_empty()
            && self.tenant_count.is_empty()
            && self.tenant_skew.is_empty()
            && self.quota_fraction.is_empty()
            && self.avail_backend.is_empty()
    }

    /// Number of runs the cross-product expands to.
    pub fn run_count(&self) -> usize {
        let n = |v: usize| v.max(1);
        n(self.malleable_fraction.len())
            * n(self.maxsd.len())
            * n(self.seed.len())
            * n(self.scale.len())
            * n(self.sharing.len())
            * n(self.backfill_depth.len())
            * n(self.day_night_contrast.len())
            * n(self.tenant_count.len())
            * n(self.tenant_skew.len())
            * n(self.quota_fraction.len())
            * n(self.avail_backend.len())
    }
}

/// A fully declared experiment: one parseable/renderable unit. Expansion of
/// the sweep axes and execution live in [`crate::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Registry key; `[A-Za-z0-9_-]+`.
    pub name: String,
    pub description: String,
    pub seed: u64,
    /// None → the source's default CI scale.
    pub scale: Option<f64>,
    pub cluster: ClusterDecl,
    pub workload: WorkloadDecl,
    pub policy: PolicyDecl,
    pub slurm: SlurmDecl,
    /// None → untenanted: no registry, no quotas, FIFO queue.
    pub tenants: Option<TenantsDecl>,
    /// Declared service-level objectives, evaluated offline by
    /// `run_scenario` and live by `sd-serve --slo` (DESIGN.md §15).
    pub slos: Vec<sd_obs::SloSpec>,
    pub sweep: SweepDecl,
}

impl Scenario {
    /// A minimal scenario on the given source, everything else defaulted.
    pub fn new(name: &str, source: SourceKind) -> Scenario {
        Scenario {
            name: name.to_string(),
            description: String::new(),
            seed: 42,
            scale: None,
            cluster: ClusterDecl::default(),
            workload: WorkloadDecl::new(source),
            policy: PolicyDecl::default(),
            slurm: SlurmDecl::default(),
            tenants: None,
            slos: Vec::new(),
            sweep: SweepDecl::default(),
        }
    }

    /// A copy pinned to an explicit scale (CLI `--scale` override, tests).
    pub fn at_scale(&self, scale: f64) -> Scenario {
        let mut s = self.clone();
        s.scale = Some(scale);
        s.sweep.scale.clear();
        s
    }

    /// The effective scale (explicit, or the source's CI default).
    pub fn effective_scale(&self) -> f64 {
        self.scale.unwrap_or_else(|| {
            self.workload
                .source
                .paper_workload()
                .map(|w| w.default_ci_scale())
                .unwrap_or(1.0)
        })
    }

    // ----- parsing -----

    /// Parses and validates a scenario document.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let doc = parse_raw(text)?;
        let meta = doc
            .section("scenario")
            .ok_or_else(|| ParseError::new(1, "missing [scenario] section"))?;
        let mut s = {
            let name_entry = meta
                .get("name")
                .ok_or_else(|| ParseError::new(meta.line, "[scenario] needs a `name`"))?;
            check_name(&name_entry.value, name_entry.line)?;
            // Source is needed up front to build the struct; default W3-like
            // only until [workload] is read (it is required below).
            Scenario::new(&name_entry.value, SourceKind::Ricc)
        };
        let mut saw_workload = false;
        for section in &doc.sections {
            match section.name.as_str() {
                "scenario" => s.parse_meta(section)?,
                "cluster" => s.parse_cluster(section)?,
                "workload" => {
                    saw_workload = true;
                    s.parse_workload(section)?;
                }
                "policy" => s.parse_policy(section)?,
                "slurm" => s.parse_slurm(section)?,
                "tenants" => s.parse_tenants(section)?,
                "slo" => s.parse_slo(section)?,
                "sweep" => s.parse_sweep(section)?,
                other => {
                    return Err(ParseError::new(
                        section.line,
                        format!(
                            "unknown section [{other}] \
                             (scenario|cluster|workload|policy|slurm|tenants|slo|sweep)"
                        ),
                    ))
                }
            }
        }
        if !saw_workload {
            return Err(ParseError::new(meta.line, "missing [workload] section"));
        }
        s.cross_validate(&doc)?;
        Ok(s)
    }

    fn parse_meta(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        for e in &sec.entries {
            match e.key.as_str() {
                "name" => {} // consumed above
                "description" => self.description = e.value.clone(),
                "seed" => self.seed = parse_u64(e)?,
                "scale" => {
                    let v = parse_f64(e)?;
                    check_positive("scale", v, e.line)?;
                    self.scale = Some(v);
                }
                k => return Err(unknown_key(k, "scenario", e.line)),
            }
        }
        Ok(())
    }

    fn parse_cluster(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        for e in &sec.entries {
            match e.key.as_str() {
                "preset" => self.cluster.preset = ClusterPreset::parse(e)?,
                "nodes" => {
                    let n = parse_u32(e)?;
                    if n == 0 {
                        return Err(ParseError::new(e.line, "`nodes` must be at least 1"));
                    }
                    self.cluster.nodes = Some(n);
                }
                k => return Err(unknown_key(k, "cluster", e.line)),
            }
        }
        Ok(())
    }

    fn parse_workload(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        let src = sec
            .get("source")
            .ok_or_else(|| ParseError::new(sec.line, "[workload] needs a `source`"))?;
        self.workload.source = SourceKind::parse(src)?;
        for e in &sec.entries {
            match e.key.as_str() {
                "source" => {}
                "path" => self.workload.path = Some(e.value.clone()),
                "jobs" => {
                    let n = parse_usize(e)?;
                    if n == 0 {
                        return Err(ParseError::new(e.line, "`jobs` must be at least 1"));
                    }
                    self.workload.jobs = Some(n);
                }
                "mean_interarrival" => {
                    let v = parse_f64(e)?;
                    check_positive("mean_interarrival", v, e.line)?;
                    self.workload.mean_interarrival = Some(v);
                }
                "arrivals" => self.workload.arrivals = Some(ArrivalKind::parse(e)?),
                "day_night_contrast" => {
                    let v = parse_f64(e)?;
                    if !(v >= 1.0 && v.is_finite()) {
                        return Err(ParseError::new(
                            e.line,
                            format!("`day_night_contrast` must be ≥ 1, got {v}"),
                        ));
                    }
                    self.workload.day_night_contrast = Some(v);
                }
                "weekend_factor" => {
                    let v = parse_f64(e)?;
                    check_unit_range("weekend_factor", v, e.line, true)?;
                    self.workload.weekend_factor = Some(v);
                }
                "batch_p" => {
                    let v = parse_f64(e)?;
                    check_unit_range("batch_p", v, e.line, true)?;
                    self.workload.batch_p = Some(v);
                }
                "batch_mean" => {
                    let v = parse_f64(e)?;
                    if !(v >= 0.0 && v.is_finite()) {
                        return Err(ParseError::new(
                            e.line,
                            format!("`batch_mean` must be ≥ 0, got {v}"),
                        ));
                    }
                    self.workload.batch_mean = Some(v);
                }
                k => return Err(unknown_key(k, "workload", e.line)),
            }
        }
        Ok(())
    }

    fn parse_policy(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        for e in &sec.entries {
            match e.key.as_str() {
                "kind" => {
                    self.policy.kind = match e.value.as_str() {
                        "static" => PolicyKindDecl::Static,
                        "sd" => PolicyKindDecl::Sd,
                        v => {
                            return Err(ParseError::new(
                                e.line,
                                format!("`kind`: unknown policy `{v}` (static|sd)"),
                            ))
                        }
                    }
                }
                "maxsd" => self.policy.maxsd = MaxSdDecl::parse_str(&e.value, e.line)?,
                "model" => self.policy.model = ModelDecl::parse(e)?,
                "sharing" => {
                    let v = parse_f64(e)?;
                    check_unit_range("sharing", v, e.line, false)?;
                    self.policy.sharing = v;
                }
                k => return Err(unknown_key(k, "policy", e.line)),
            }
        }
        Ok(())
    }

    fn parse_slurm(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        for e in &sec.entries {
            match e.key.as_str() {
                "backfill" => {
                    self.slurm.backfill = Some(match e.value.as_str() {
                        "easy" => BackfillDecl::Easy,
                        "conservative" => BackfillDecl::Conservative,
                        v => {
                            return Err(ParseError::new(
                                e.line,
                                format!("`backfill`: unknown mode `{v}` (easy|conservative)"),
                            ))
                        }
                    })
                }
                "backfill_depth" => {
                    let n = parse_usize(e)?;
                    if n == 0 {
                        return Err(ParseError::new(e.line, "`backfill_depth` must be ≥ 1"));
                    }
                    self.slurm.backfill_depth = Some(n);
                }
                "malleable_fraction" => {
                    let v = parse_f64(e)?;
                    check_unit_range("malleable_fraction", v, e.line, true)?;
                    self.slurm.malleable_fraction = v;
                }
                "ranks_per_node" => {
                    let n = parse_u32(e)?;
                    if n == 0 {
                        return Err(ParseError::new(e.line, "`ranks_per_node` must be ≥ 1"));
                    }
                    self.slurm.ranks_per_node = Some(n);
                }
                "avail_backend" => {
                    self.slurm.avail_backend = Some(AvailBackendDecl::parse(e)?)
                }
                k => return Err(unknown_key(k, "slurm", e.line)),
            }
        }
        Ok(())
    }

    fn parse_tenants(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        let count_entry = sec
            .get("count")
            .ok_or_else(|| ParseError::new(sec.line, "[tenants] needs a `count`"))?;
        let count = parse_u32(count_entry)?;
        if count == 0 {
            return Err(ParseError::new(count_entry.line, "`count` must be at least 1"));
        }
        let mut t = TenantsDecl::new(count);
        for e in &sec.entries {
            match e.key.as_str() {
                "count" => {}
                "skew" => {
                    let v = parse_f64(e)?;
                    if !(v >= 0.0 && v.is_finite()) {
                        return Err(ParseError::new(
                            e.line,
                            format!("`skew` must be ≥ 0, got {v}"),
                        ));
                    }
                    t.skew = v;
                }
                "quota_fraction" => {
                    let v = parse_f64(e)?;
                    check_positive("quota_fraction", v, e.line)?;
                    t.quota_fraction = v;
                }
                "queue" => t.queue = TenantQueueDecl::parse(e)?,
                "half_life" => t.half_life = parse_u64(e)?,
                k => return Err(unknown_key(k, "tenants", e.line)),
            }
        }
        self.tenants = Some(t);
        Ok(())
    }

    fn parse_slo(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        for e in &sec.entries {
            if !sd_obs::KNOWN_KEYS.contains(&e.key.as_str()) {
                return Err(ParseError::new(
                    e.line,
                    format!(
                        "unknown objective `{}` in [slo] ({})",
                        e.key,
                        sd_obs::KNOWN_KEYS.join("|")
                    ),
                ));
            }
            if self.slos.iter().any(|s| s.name == e.key) {
                return Err(ParseError::new(
                    e.line,
                    format!("duplicate objective `{}` in [slo]", e.key),
                ));
            }
            let v = parse_f64(e)?;
            let spec = sd_obs::SloSpec::parse(&e.key, v)
                .map_err(|msg| ParseError::new(e.line, msg))?;
            self.slos.push(spec);
        }
        Ok(())
    }

    fn parse_sweep(&mut self, sec: &RawSection) -> Result<(), ParseError> {
        for e in &sec.entries {
            let items = parse_list(e)?;
            match e.key.as_str() {
                "malleable_fraction" => {
                    for it in &items {
                        let v: f64 = it.parse().map_err(|_| list_num_err(e, it))?;
                        check_unit_range("malleable_fraction", v, e.line, true)?;
                        self.sweep.malleable_fraction.push(v);
                    }
                }
                "maxsd" => {
                    for it in &items {
                        self.sweep.maxsd.push(MaxSdDecl::parse_str(it, e.line)?);
                    }
                }
                "seed" => {
                    for it in &items {
                        self.sweep.seed.push(it.parse().map_err(|_| list_num_err(e, it))?);
                    }
                }
                "scale" => {
                    for it in &items {
                        let v: f64 = it.parse().map_err(|_| list_num_err(e, it))?;
                        check_positive("scale", v, e.line)?;
                        self.sweep.scale.push(v);
                    }
                }
                "sharing" => {
                    for it in &items {
                        let v: f64 = it.parse().map_err(|_| list_num_err(e, it))?;
                        check_unit_range("sharing", v, e.line, false)?;
                        self.sweep.sharing.push(v);
                    }
                }
                "backfill_depth" => {
                    for it in &items {
                        let v: usize = it.parse().map_err(|_| list_num_err(e, it))?;
                        if v == 0 {
                            return Err(ParseError::new(e.line, "`backfill_depth` must be ≥ 1"));
                        }
                        self.sweep.backfill_depth.push(v);
                    }
                }
                "day_night_contrast" => {
                    for it in &items {
                        let v: f64 = it.parse().map_err(|_| list_num_err(e, it))?;
                        if !(v >= 1.0 && v.is_finite()) {
                            return Err(ParseError::new(
                                e.line,
                                format!("`day_night_contrast` must be ≥ 1, got {v}"),
                            ));
                        }
                        self.sweep.day_night_contrast.push(v);
                    }
                }
                "tenant_count" => {
                    for it in &items {
                        let v: u32 = it.parse().map_err(|_| list_num_err(e, it))?;
                        if v == 0 {
                            return Err(ParseError::new(e.line, "`tenant_count` must be ≥ 1"));
                        }
                        self.sweep.tenant_count.push(v);
                    }
                }
                "tenant_skew" => {
                    for it in &items {
                        let v: f64 = it.parse().map_err(|_| list_num_err(e, it))?;
                        if !(v >= 0.0 && v.is_finite()) {
                            return Err(ParseError::new(
                                e.line,
                                format!("`tenant_skew` must be ≥ 0, got {v}"),
                            ));
                        }
                        self.sweep.tenant_skew.push(v);
                    }
                }
                "quota_fraction" => {
                    for it in &items {
                        let v: f64 = it.parse().map_err(|_| list_num_err(e, it))?;
                        check_positive("quota_fraction", v, e.line)?;
                        self.sweep.quota_fraction.push(v);
                    }
                }
                "avail_backend" => {
                    for it in &items {
                        self.sweep
                            .avail_backend
                            .push(AvailBackendDecl::parse_str(it, e.line)?);
                    }
                }
                k => return Err(unknown_key(k, "sweep", e.line)),
            }
        }
        Ok(())
    }

    /// Constraints spanning sections. Errors point at the offending entry.
    fn cross_validate(&self, doc: &crate::format::RawDoc) -> Result<(), ParseError> {
        let line_of = |sec: &str, key: &str| {
            doc.section(sec)
                .and_then(|s| s.get(key))
                .map(|e| e.line)
                .unwrap_or_else(|| doc.section(sec).map(|s| s.line).unwrap_or(1))
        };
        match self.workload.source {
            SourceKind::Swf => {
                if self.workload.path.is_none() {
                    return Err(ParseError::new(
                        line_of("workload", "source"),
                        "`source = swf` requires a `path`",
                    ));
                }
                if self.workload.has_generator_tweaks() {
                    return Err(ParseError::new(
                        line_of("workload", "source"),
                        "generator overrides (jobs/arrivals/batching) do not apply to SWF replay",
                    ));
                }
            }
            SourceKind::RealRun => {
                if self.workload.has_generator_tweaks() || self.workload.path.is_some() {
                    return Err(ParseError::new(
                        line_of("workload", "source"),
                        "the real-run workload is fixed; generator overrides do not apply",
                    ));
                }
                if self.cluster != ClusterDecl::default() {
                    return Err(ParseError::new(
                        line_of("cluster", "preset"),
                        "the real-run workload always runs on the 49-node MN4 subset",
                    ));
                }
                if self.scale.is_some() || !self.sweep.scale.is_empty() {
                    return Err(ParseError::new(
                        line_of("scenario", "scale"),
                        "the real-run workload is fixed-size; `scale` does not apply",
                    ));
                }
            }
            _ => {
                if self.workload.path.is_some() {
                    return Err(ParseError::new(
                        line_of("workload", "path"),
                        "`path` only applies to `source = swf`",
                    ));
                }
            }
        }
        if self.workload.day_night_contrast.is_some()
            && self.workload.arrivals != Some(ArrivalKind::DayNight)
        {
            return Err(ParseError::new(
                line_of("workload", "day_night_contrast"),
                "`day_night_contrast` requires `arrivals = day_night`",
            ));
        }
        if !self.sweep.day_night_contrast.is_empty()
            && self.workload.arrivals != Some(ArrivalKind::DayNight)
        {
            return Err(ParseError::new(
                line_of("sweep", "day_night_contrast"),
                "a `day_night_contrast` sweep requires `arrivals = day_night`",
            ));
        }
        if self.policy.kind == PolicyKindDecl::Static && !self.sweep.maxsd.is_empty() {
            return Err(ParseError::new(
                line_of("sweep", "maxsd"),
                "a `maxsd` sweep needs `kind = sd`",
            ));
        }
        if self.tenants.is_some()
            && matches!(self.workload.source, SourceKind::Swf | SourceKind::RealRun)
        {
            return Err(ParseError::new(
                line_of("tenants", "count"),
                "[tenants] requires a synthetic workload source \
                 (the tenant mix is stamped by the generator)",
            ));
        }
        if self.tenants.is_none() {
            for key in ["tenant_count", "tenant_skew", "quota_fraction"] {
                if doc.section("sweep").and_then(|s| s.get(key)).is_some() {
                    return Err(ParseError::new(
                        line_of("sweep", key),
                        format!("a `{key}` sweep requires a [tenants] section"),
                    ));
                }
            }
        }
        Ok(())
    }

    // ----- rendering -----

    /// Renders the canonical text form: `Scenario::parse(s.render()) == s`.
    /// Optional fields are emitted only when set; defaulted sections are
    /// omitted entirely.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "[scenario]");
        let _ = writeln!(out, "name = {}", self.name);
        if !self.description.is_empty() {
            let _ = writeln!(out, "description = {}", self.description);
        }
        let _ = writeln!(out, "seed = {}", self.seed);
        if let Some(scale) = self.scale {
            let _ = writeln!(out, "scale = {scale}");
        }

        if self.cluster != ClusterDecl::default() {
            let _ = writeln!(out, "\n[cluster]");
            if self.cluster.preset != ClusterPreset::Auto {
                let _ = writeln!(out, "preset = {}", self.cluster.preset.render());
            }
            if let Some(n) = self.cluster.nodes {
                let _ = writeln!(out, "nodes = {n}");
            }
        }

        let w = &self.workload;
        let _ = writeln!(out, "\n[workload]");
        let _ = writeln!(out, "source = {}", w.source.render());
        if let Some(p) = &w.path {
            let _ = writeln!(out, "path = {p}");
        }
        if let Some(n) = w.jobs {
            let _ = writeln!(out, "jobs = {n}");
        }
        if let Some(v) = w.mean_interarrival {
            let _ = writeln!(out, "mean_interarrival = {v}");
        }
        if let Some(a) = w.arrivals {
            let _ = writeln!(out, "arrivals = {}", a.render());
        }
        if let Some(v) = w.day_night_contrast {
            let _ = writeln!(out, "day_night_contrast = {v}");
        }
        if let Some(v) = w.weekend_factor {
            let _ = writeln!(out, "weekend_factor = {v}");
        }
        if let Some(v) = w.batch_p {
            let _ = writeln!(out, "batch_p = {v}");
        }
        if let Some(v) = w.batch_mean {
            let _ = writeln!(out, "batch_mean = {v}");
        }

        if self.policy != PolicyDecl::default() {
            let _ = writeln!(out, "\n[policy]");
            let d = PolicyDecl::default();
            if self.policy.kind != d.kind {
                let _ = writeln!(out, "kind = static");
            }
            if self.policy.maxsd != d.maxsd {
                let _ = writeln!(out, "maxsd = {}", self.policy.maxsd);
            }
            if self.policy.model != d.model {
                let _ = writeln!(out, "model = {}", self.policy.model.render());
            }
            if self.policy.sharing != d.sharing {
                let _ = writeln!(out, "sharing = {}", self.policy.sharing);
            }
        }

        if self.slurm != SlurmDecl::default() {
            let _ = writeln!(out, "\n[slurm]");
            if let Some(b) = self.slurm.backfill {
                let _ = writeln!(
                    out,
                    "backfill = {}",
                    match b {
                        BackfillDecl::Easy => "easy",
                        BackfillDecl::Conservative => "conservative",
                    }
                );
            }
            if let Some(n) = self.slurm.backfill_depth {
                let _ = writeln!(out, "backfill_depth = {n}");
            }
            if self.slurm.malleable_fraction != 1.0 {
                let _ = writeln!(out, "malleable_fraction = {}", self.slurm.malleable_fraction);
            }
            if let Some(n) = self.slurm.ranks_per_node {
                let _ = writeln!(out, "ranks_per_node = {n}");
            }
            if let Some(b) = self.slurm.avail_backend {
                let _ = writeln!(out, "avail_backend = {}", b.render());
            }
        }

        if let Some(t) = &self.tenants {
            let _ = writeln!(out, "\n[tenants]");
            let _ = writeln!(out, "count = {}", t.count);
            if t.skew != 0.0 {
                let _ = writeln!(out, "skew = {}", t.skew);
            }
            if t.quota_fraction != 1.0 {
                let _ = writeln!(out, "quota_fraction = {}", t.quota_fraction);
            }
            if t.queue != TenantQueueDecl::Fifo {
                let _ = writeln!(out, "queue = {}", t.queue.render());
            }
            if t.half_life != DEFAULT_HALF_LIFE {
                let _ = writeln!(out, "half_life = {}", t.half_life);
            }
        }

        if !self.slos.is_empty() {
            let _ = writeln!(out, "\n[slo]");
            for s in &self.slos {
                // The value position carries the objective fraction for
                // availability and the threshold for the quantile kinds —
                // mirroring how `SloSpec::parse` reads it back.
                let v = match s.kind {
                    sd_obs::SloKind::Availability => s.objective,
                    _ => s.threshold,
                };
                let _ = writeln!(out, "{} = {v}", s.name);
            }
        }

        if !self.sweep.is_empty() {
            let _ = writeln!(out, "\n[sweep]");
            if !self.sweep.malleable_fraction.is_empty() {
                let _ = writeln!(
                    out,
                    "malleable_fraction = {}",
                    render_list(&self.sweep.malleable_fraction)
                );
            }
            if !self.sweep.maxsd.is_empty() {
                let _ = writeln!(out, "maxsd = {}", render_list(&self.sweep.maxsd));
            }
            if !self.sweep.seed.is_empty() {
                let _ = writeln!(out, "seed = {}", render_list(&self.sweep.seed));
            }
            if !self.sweep.scale.is_empty() {
                let _ = writeln!(out, "scale = {}", render_list(&self.sweep.scale));
            }
            if !self.sweep.sharing.is_empty() {
                let _ = writeln!(out, "sharing = {}", render_list(&self.sweep.sharing));
            }
            if !self.sweep.backfill_depth.is_empty() {
                let _ = writeln!(
                    out,
                    "backfill_depth = {}",
                    render_list(&self.sweep.backfill_depth)
                );
            }
            if !self.sweep.day_night_contrast.is_empty() {
                let _ = writeln!(
                    out,
                    "day_night_contrast = {}",
                    render_list(&self.sweep.day_night_contrast)
                );
            }
            if !self.sweep.tenant_count.is_empty() {
                let _ = writeln!(out, "tenant_count = {}", render_list(&self.sweep.tenant_count));
            }
            if !self.sweep.tenant_skew.is_empty() {
                let _ = writeln!(out, "tenant_skew = {}", render_list(&self.sweep.tenant_skew));
            }
            if !self.sweep.quota_fraction.is_empty() {
                let _ = writeln!(
                    out,
                    "quota_fraction = {}",
                    render_list(&self.sweep.quota_fraction)
                );
            }
            if !self.sweep.avail_backend.is_empty() {
                let _ = writeln!(
                    out,
                    "avail_backend = {}",
                    render_list(&self.sweep.avail_backend)
                );
            }
        }
        out
    }
}

fn unknown_key(key: &str, section: &str, line: usize) -> ParseError {
    ParseError::new(line, format!("unknown key `{key}` in [{section}]"))
}

fn list_num_err(e: &RawEntry, item: &str) -> ParseError {
    ParseError::new(e.line, format!("`{}`: not a number: {item}", e.key))
}

fn check_name(name: &str, line: usize) -> Result<(), ParseError> {
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(ParseError::new(
            line,
            format!("`name` must be non-empty [A-Za-z0-9_-]+, got `{name}`"),
        ));
    }
    Ok(())
}

fn check_positive(key: &str, v: f64, line: usize) -> Result<(), ParseError> {
    if !(v > 0.0 && v.is_finite()) {
        return Err(ParseError::new(line, format!("`{key}` must be > 0, got {v}")));
    }
    Ok(())
}

fn check_unit_range(key: &str, v: f64, line: usize, inclusive_one: bool) -> Result<(), ParseError> {
    let ok = if inclusive_one {
        (0.0..=1.0).contains(&v)
    } else {
        (0.0..1.0).contains(&v)
    };
    if !ok {
        let range = if inclusive_one { "[0, 1]" } else { "[0, 1)" };
        return Err(ParseError::new(
            line,
            format!("`{key}` must be in {range}, got {v}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "\
# demo scenario
[scenario]
name = demo
description = everything, dialled up
seed = 7
scale = 0.1

[cluster]
preset = ricc
nodes = 128

[workload]
source = ricc
jobs = 2000
mean_interarrival = 25
arrivals = day_night
day_night_contrast = 4
weekend_factor = 0.3
batch_p = 0.6
batch_mean = 10

[policy]
kind = sd
maxsd = 10
model = worst_case
sharing = 0.25

[slurm]
backfill = easy
backfill_depth = 50
malleable_fraction = 0.5
ranks_per_node = 4
avail_backend = slottree

[tenants]
count = 4
skew = 1.5
quota_fraction = 0.5
queue = fair_share
half_life = 3600

[slo]
p99_wait_seconds = 3600
submit_availability = 0.999

[sweep]
malleable_fraction = [0, 0.5, 1]
maxsd = [5, inf, dyn]
seed = [1, 2]
tenant_skew = [0, 1]
avail_backend = [profile, slottree]
";

    #[test]
    fn parses_a_full_scenario() {
        let s = Scenario::parse(FULL).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.seed, 7);
        assert_eq!(s.scale, Some(0.1));
        assert_eq!(s.cluster.preset, ClusterPreset::Ricc);
        assert_eq!(s.cluster.nodes, Some(128));
        assert_eq!(s.workload.source, SourceKind::Ricc);
        assert_eq!(s.workload.jobs, Some(2000));
        assert_eq!(s.workload.arrivals, Some(ArrivalKind::DayNight));
        assert_eq!(s.policy.maxsd, MaxSdDecl::Value(10.0));
        assert_eq!(s.policy.model, ModelDecl::WorstCase);
        assert_eq!(s.slurm.backfill, Some(BackfillDecl::Easy));
        assert!((s.slurm.malleable_fraction - 0.5).abs() < 1e-12);
        assert_eq!(s.sweep.maxsd, vec![MaxSdDecl::Value(5.0), MaxSdDecl::Infinite, MaxSdDecl::Dyn]);
        let t = s.tenants.as_ref().unwrap();
        assert_eq!(t.count, 4);
        assert!((t.skew - 1.5).abs() < 1e-12);
        assert!((t.quota_fraction - 0.5).abs() < 1e-12);
        assert_eq!(t.queue, TenantQueueDecl::FairShare);
        assert_eq!(t.half_life, 3600);
        assert_eq!(s.sweep.tenant_skew, vec![0.0, 1.0]);
        assert_eq!(s.slurm.avail_backend, Some(AvailBackendDecl::SlotTree));
        assert_eq!(
            s.sweep.avail_backend,
            vec![AvailBackendDecl::Profile, AvailBackendDecl::SlotTree]
        );
        assert_eq!(s.sweep.run_count(), 3 * 3 * 2 * 2 * 2);
        assert_eq!(s.slos.len(), 2);
        assert_eq!(s.slos[0].kind, sd_obs::SloKind::WaitQuantile);
        assert!((s.slos[0].threshold - 3600.0).abs() < 1e-12);
        assert_eq!(s.slos[1].kind, sd_obs::SloKind::Availability);
        assert!((s.slos[1].objective - 0.999).abs() < 1e-12);
    }

    #[test]
    fn slo_section_rules() {
        let base = |extra: &str| {
            format!("[scenario]\nname = x\n[workload]\nsource = ricc\n{extra}")
        };
        let e = Scenario::parse(&base("[slo]\np42_jitter = 1\n")).unwrap_err();
        assert!(e.msg.contains("p99_wait_seconds"), "{e}");
        let e = Scenario::parse(&base(
            "[slo]\nsubmit_availability = 0.99\nsubmit_availability = 0.9\n",
        ))
        .unwrap_err();
        assert!(e.msg.contains("duplicate"), "{e}");
        // Objective fractions must leave a non-empty error budget.
        assert!(Scenario::parse(&base("[slo]\nsubmit_availability = 1\n")).is_err());
        assert!(Scenario::parse(&base("[slo]\npass_duration_p95 = 0\n")).is_err());
        let s = Scenario::parse(&base("[slo]\npass_duration_p95 = 0.5\n")).unwrap();
        assert_eq!(s.slos[0].kind, sd_obs::SloKind::PassQuantile);
    }

    #[test]
    fn avail_backend_vocabulary() {
        let base = |extra: &str| {
            format!("[scenario]\nname = x\n[workload]\nsource = ricc\n{extra}")
        };
        let e = Scenario::parse(&base("[slurm]\navail_backend = btree\n")).unwrap_err();
        assert!(e.msg.contains("profile|slottree"), "{e}");
        let s = Scenario::parse(&base("[slurm]\navail_backend = profile\n")).unwrap();
        assert_eq!(s.slurm.avail_backend, Some(AvailBackendDecl::Profile));
    }

    #[test]
    fn roundtrips_through_render() {
        let s = Scenario::parse(FULL).unwrap();
        let text = s.render();
        let back = Scenario::parse(&text).unwrap();
        assert_eq!(back, s, "render:\n{text}");
    }

    #[test]
    fn minimal_scenario_uses_defaults() {
        let s = Scenario::parse("[scenario]\nname = tiny\n[workload]\nsource = cirne\n").unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.scale, None);
        assert!((s.effective_scale() - 0.2).abs() < 1e-12, "W1 CI default");
        assert_eq!(s.policy, PolicyDecl::default());
        assert!(s.sweep.is_empty());
        assert_eq!(s.sweep.run_count(), 1);
        // And a default-heavy scenario renders to a minimal document.
        let text = s.render();
        assert!(!text.contains("[policy]"), "{text}");
        assert!(!text.contains("[sweep]"), "{text}");
        assert_eq!(Scenario::parse(&text).unwrap(), s);
    }

    #[test]
    fn unknown_keys_rejected_with_line() {
        let text = "[scenario]\nname = x\n[workload]\nsource = ricc\nbogus_knob = 3\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.msg.contains("bogus_knob"), "{e}");

        let e = Scenario::parse("[scenario]\nname = x\ntypo = 1\n[workload]\nsource = ricc\n")
            .unwrap_err();
        assert_eq!(e.line, 3);

        let e = Scenario::parse("[scenario]\nname = x\n[workload]\nsource = ricc\n[wat]\nz = 1\n")
            .unwrap_err();
        assert_eq!(e.line, 5);
        assert!(e.msg.contains("[wat]"));
    }

    #[test]
    fn missing_required_sections_rejected() {
        assert!(Scenario::parse("").is_err());
        assert!(Scenario::parse("[scenario]\nname = x\n").is_err(), "no workload");
        assert!(Scenario::parse("[scenario]\nseed = 2\n[workload]\nsource = ricc\n").is_err());
        assert!(Scenario::parse("[scenario]\nname = x\n[workload]\njobs = 5\n").is_err());
    }

    #[test]
    fn value_range_validation() {
        let base = |extra: &str| {
            format!("[scenario]\nname = x\n[workload]\nsource = ricc\n{extra}")
        };
        assert!(Scenario::parse(&base("[policy]\nsharing = 1.0\n")).is_err());
        assert!(Scenario::parse(&base("[policy]\nmaxsd = 0.5\n")).is_err());
        assert!(Scenario::parse(&base("[slurm]\nmalleable_fraction = 1.5\n")).is_err());
        assert!(Scenario::parse(&base("[workload2]\n")).is_err());
        let e = Scenario::parse(&base("[sweep]\nscale = [0.1, -1]\n")).unwrap_err();
        assert_eq!(e.line, 6, "the scale entry is on line 6: {e}");
    }

    #[test]
    fn cross_section_rules() {
        // swf needs a path.
        let e = Scenario::parse("[scenario]\nname = x\n[workload]\nsource = swf\n").unwrap_err();
        assert!(e.msg.contains("path"), "{e}");
        // real_run refuses tweaks and scale.
        let e = Scenario::parse(
            "[scenario]\nname = x\nscale = 0.5\n[workload]\nsource = real_run\n",
        )
        .unwrap_err();
        assert!(e.msg.contains("scale"), "{e}");
        // day_night_contrast requires the day_night pattern.
        let e = Scenario::parse(
            "[scenario]\nname = x\n[workload]\nsource = ricc\nday_night_contrast = 3\n",
        )
        .unwrap_err();
        assert!(e.msg.contains("day_night"), "{e}");
        // maxsd sweep on a static policy is meaningless.
        let e = Scenario::parse(
            "[scenario]\nname = x\n[workload]\nsource = ricc\n[policy]\nkind = static\n[sweep]\nmaxsd = [5]\n",
        )
        .unwrap_err();
        assert!(e.msg.contains("kind = sd"), "{e}");
    }

    #[test]
    fn tenants_section_rules() {
        let base = |extra: &str| {
            format!("[scenario]\nname = x\n[workload]\nsource = ricc\n{extra}")
        };
        // count is required and positive.
        let e = Scenario::parse(&base("[tenants]\nskew = 1\n")).unwrap_err();
        assert!(e.msg.contains("count"), "{e}");
        assert!(Scenario::parse(&base("[tenants]\ncount = 0\n")).is_err());
        // Defaults fill in around count.
        let s = Scenario::parse(&base("[tenants]\ncount = 3\n")).unwrap();
        assert_eq!(s.tenants, Some(TenantsDecl::new(3)));
        // Vocabulary and ranges.
        assert!(Scenario::parse(&base("[tenants]\ncount = 2\nqueue = lottery\n")).is_err());
        assert!(Scenario::parse(&base("[tenants]\ncount = 2\nskew = -1\n")).is_err());
        assert!(Scenario::parse(&base("[tenants]\ncount = 2\nquota_fraction = 0\n")).is_err());
        // Tenancy needs a synthetic source.
        let e = Scenario::parse(
            "[scenario]\nname = x\n[workload]\nsource = swf\npath = /tmp/t.swf\n[tenants]\ncount = 2\n",
        )
        .unwrap_err();
        assert!(e.msg.contains("synthetic"), "{e}");
        // Tenant sweep axes need the [tenants] section.
        let e = Scenario::parse(&base("[sweep]\ntenant_skew = [0, 1]\n")).unwrap_err();
        assert!(e.msg.contains("[tenants]"), "{e}");
        let e = Scenario::parse(&base("[sweep]\nquota_fraction = [0.5]\n")).unwrap_err();
        assert!(e.msg.contains("[tenants]"), "{e}");
        // With the section present all three axes multiply the run count.
        let s = Scenario::parse(&base(
            "[tenants]\ncount = 2\n[sweep]\ntenant_count = [2, 4]\ntenant_skew = [0, 1, 2]\nquota_fraction = [0.5, 1]\n",
        ))
        .unwrap();
        assert_eq!(s.sweep.run_count(), 2 * 3 * 2);
    }

    #[test]
    fn maxsd_display_roundtrips() {
        for m in [MaxSdDecl::Value(7.5), MaxSdDecl::Infinite, MaxSdDecl::Dyn] {
            let s = m.to_string();
            assert_eq!(MaxSdDecl::parse_str(&s, 1).unwrap(), m);
        }
        assert!(MaxSdDecl::parse_str("1.0", 1).is_err(), "cut-off ≤ 1 rejected");
    }
}
