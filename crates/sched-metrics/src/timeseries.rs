//! Per-day series (paper Fig. 7).
//!
//! Fig. 7 plots, per simulated day, the average slowdown of static backfill
//! vs SD-Policy (lines) and the number of jobs scheduled with malleability
//! (columns). Jobs are attributed to the day they **complete** (slowdown is
//! only known then); malleable starts to the day they **start**.

use simkit::Welford;
use slurm_sim::JobOutcome;

/// Daily aggregates over one run.
#[derive(Debug, Clone)]
pub struct DailySeries {
    /// Day index → mean slowdown of jobs completed that day.
    pub slowdown: Vec<f64>,
    /// Day index → jobs completed that day.
    pub completed: Vec<u64>,
    /// Day index → jobs started through malleable backfill that day.
    pub malleable_started: Vec<u64>,
}

impl DailySeries {
    pub fn compute(outcomes: &[JobOutcome]) -> DailySeries {
        let last_day = outcomes
            .iter()
            .map(|o| o.end.day())
            .max()
            .map(|d| d as usize + 1)
            .unwrap_or(0);
        let mut acc = vec![Welford::new(); last_day];
        let mut malleable = vec![0u64; last_day];
        for o in outcomes {
            let d = o.end.day() as usize;
            acc[d].add(o.slowdown());
            if o.malleable_backfilled {
                let sd = (o.start.day() as usize).min(last_day.saturating_sub(1));
                malleable[sd] += 1;
            }
        }
        DailySeries {
            slowdown: acc.iter().map(|w| w.mean()).collect(),
            completed: acc.iter().map(|w| w.count()).collect(),
            malleable_started: malleable,
        }
    }

    pub fn days(&self) -> usize {
        self.slowdown.len()
    }

    /// Highest daily average slowdown (the "peaks" Fig. 7 shows SD-Policy
    /// flattening).
    pub fn peak_slowdown(&self) -> f64 {
        self.slowdown.iter().cloned().fold(0.0, f64::max)
    }

    pub fn total_malleable(&self) -> u64 {
        self.malleable_started.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;
    use simkit::{SimTime, DAY};

    fn outcome(id: u64, end_day: u64, slowdown_x: u64, malleable: bool) -> JobOutcome {
        // static runtime 100; response = 100 * slowdown_x
        let end = end_day * DAY + 1000;
        let resp = 100 * slowdown_x;
        JobOutcome {
            id: JobId(id),
            submit: SimTime(end - resp),
            start: SimTime(end - 100),
            end: SimTime(end),
            nodes: 1,
            procs: 8,
            req_time: 100,
            static_runtime: 100,
            malleable_backfilled: malleable,
            was_mate: false,
            app: None,
            tenant: 0,
        }
    }

    #[test]
    fn groups_by_completion_day() {
        let s = DailySeries::compute(&[
            outcome(1, 0, 2, false),
            outcome(2, 0, 4, false),
            outcome(3, 2, 10, false),
        ]);
        assert_eq!(s.days(), 3);
        assert!((s.slowdown[0] - 3.0).abs() < 1e-9);
        assert_eq!(s.completed[0], 2);
        assert_eq!(s.completed[1], 0);
        assert!((s.slowdown[2] - 10.0).abs() < 1e-9);
        assert_eq!(s.peak_slowdown(), 10.0);
    }

    #[test]
    fn counts_malleable_starts() {
        let s = DailySeries::compute(&[
            outcome(1, 1, 2, true),
            outcome(2, 1, 2, true),
            outcome(3, 1, 2, false),
        ]);
        assert_eq!(s.total_malleable(), 2);
        // Starts happened on day 1 (start = end − 100 s, same day here).
        assert_eq!(s.malleable_started[1], 2);
    }

    #[test]
    fn empty_outcomes() {
        let s = DailySeries::compute(&[]);
        assert_eq!(s.days(), 0);
        assert_eq!(s.peak_slowdown(), 0.0);
    }
}
