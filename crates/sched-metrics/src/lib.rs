//! # sched-metrics — analysis of simulation results
//!
//! Turns `slurm_sim::SimResult` values into the paper's figures and tables:
//!
//! * [`summary`] — the headline aggregates (§4's metric definitions:
//!   makespan, average response time, average slowdown, energy),
//! * [`heatmap`] — job-category bucketing by requested nodes × runtime class
//!   and the static/SD ratio heatmaps of Figs. 4–6,
//! * [`timeseries`] — per-day slowdown and malleable-start series (Fig. 7),
//! * [`normalize`] — "normalized to static backfill" helpers (Figs. 1–3, 8),
//! * [`table`] — plain-text table rendering for the experiment binaries,
//! * [`export`] — deterministic CSV/JSON writers (figures + scenario
//!   campaigns).

pub mod export;
pub mod heatmap;
pub mod histogram;
pub mod normalize;
pub mod percentiles;
pub mod summary;
pub mod table;
pub mod timeseries;
pub mod tracesum;

pub use export::{
    campaign_csv, campaign_json, daily_csv, heatmap_csv, series_csv, tenant_csv, CampaignDeltas,
    CampaignRow,
};
pub use heatmap::{Heatmap, HeatmapSpec, RatioHeatmap};
pub use histogram::Histogram;
pub use normalize::{improvement_pct, normalized};
pub use percentiles::Percentiles;
pub use summary::{tenant_summaries, Summary, TenantSummary};
pub use table::Table;
pub use timeseries::DailySeries;
pub use tracesum::{summarize, TraceSummary, WaitDecomposition};
