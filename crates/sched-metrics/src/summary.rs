//! Headline aggregates — the paper's §4 metric definitions.
//!
//! * **Makespan**: "difference between the last job end time and the first
//!   job arrival time".
//! * **Average response time**: mean of `end − submit`.
//! * **Average slowdown**: mean of `response / static execution time`.
//! * **Energy**: integral of the power model over the makespan.

use simkit::Welford;
use slurm_sim::SimResult;

/// Aggregate view of one run.
#[derive(Debug, Clone)]
pub struct Summary {
    pub label: String,
    pub jobs: usize,
    pub makespan: u64,
    pub mean_response: f64,
    pub mean_slowdown: f64,
    pub mean_wait: f64,
    /// Bounded slowdown (runtime floored at 10 s) — robustness companion.
    pub mean_bounded_slowdown: f64,
    pub energy_kwh: f64,
    /// Machine utilisation: consumed core-seconds / (makespan × cores).
    pub utilization: f64,
    pub malleable_started: u64,
    pub unique_mates: u64,
    /// Standard deviation of slowdown (spread/fairness indicator).
    pub slowdown_stddev: f64,
}

impl Summary {
    /// Computes the summary; `total_cores` is the machine size for the
    /// utilisation figure.
    pub fn from_result(label: &str, res: &SimResult, total_cores: u64) -> Summary {
        let mut resp = Welford::new();
        let mut sd = Welford::new();
        let mut bsd = Welford::new();
        let mut wait = Welford::new();
        let mut core_seconds = 0.0;
        for o in &res.outcomes {
            resp.add(o.response() as f64);
            sd.add(o.slowdown());
            let denom = o.static_runtime.max(10) as f64;
            bsd.add((o.response() as f64 / denom).max(1.0));
            wait.add(o.wait() as f64);
            core_seconds += o.runtime() as f64 * o.procs.min(o.nodes as u64 * 10_000) as f64;
        }
        let util = if res.makespan == 0 || total_cores == 0 {
            0.0
        } else {
            (core_seconds / (res.makespan as f64 * total_cores as f64)).min(1.0)
        };
        Summary {
            label: label.to_string(),
            jobs: res.outcomes.len(),
            makespan: res.makespan,
            mean_response: resp.mean(),
            mean_slowdown: sd.mean(),
            mean_wait: wait.mean(),
            mean_bounded_slowdown: bsd.mean(),
            energy_kwh: res.energy_kwh(),
            utilization: util,
            malleable_started: res.stats.started_malleable,
            unique_mates: res.stats.unique_mates,
            slowdown_stddev: sd.stddev(),
        }
    }
}

/// Per-tenant slice of one run, derived from the outcomes' tenant labels.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    pub tenant: u32,
    pub jobs: usize,
    /// This tenant's share of the run's completed jobs, in `[0, 1]`.
    pub job_share: f64,
    pub mean_wait: f64,
    pub mean_slowdown: f64,
    /// Consumed node-seconds (whole nodes × wall runtime).
    pub node_seconds: u64,
}

/// Per-tenant breakdown of a result, ascending by tenant id. Empty for
/// untenanted runs (every outcome on the anonymous tenant 0), so exports can
/// omit the section without a separate flag.
pub fn tenant_summaries(res: &SimResult) -> Vec<TenantSummary> {
    use std::collections::BTreeMap;
    let mut acc: BTreeMap<u32, (usize, Welford, Welford, u64)> = BTreeMap::new();
    for o in &res.outcomes {
        let e = acc
            .entry(o.tenant)
            .or_insert_with(|| (0, Welford::new(), Welford::new(), 0));
        e.0 += 1;
        e.1.add(o.wait() as f64);
        e.2.add(o.slowdown());
        e.3 += o.nodes as u64 * o.runtime();
    }
    if acc.keys().all(|&t| t == 0) {
        return Vec::new();
    }
    let total = res.outcomes.len().max(1) as f64;
    acc.into_iter()
        .map(|(tenant, (jobs, wait, sd, node_seconds))| TenantSummary {
            tenant,
            jobs,
            job_share: jobs as f64 / total,
            mean_wait: wait.mean(),
            mean_slowdown: sd.mean(),
            node_seconds,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;
    use simkit::SimTime;
    use slurm_sim::{JobOutcome, SimStats};

    fn outcome(id: u64, submit: u64, start: u64, end: u64, static_rt: u64, procs: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime(submit),
            start: SimTime(start),
            end: SimTime(end),
            nodes: 1,
            procs,
            req_time: static_rt,
            static_runtime: static_rt,
            malleable_backfilled: false,
            was_mate: false,
            app: None,
            tenant: 0,
        }
    }

    fn result(outcomes: Vec<JobOutcome>, makespan: u64) -> SimResult {
        SimResult {
            scheduler: "test",
            first_submit: SimTime(0),
            last_end: SimTime(makespan),
            makespan,
            energy_joules: 7.2e6,
            leftover_pending: 0,
            leftover_running: 0,
            stats: SimStats::default(),
            outcomes,
        }
    }

    #[test]
    fn summary_aggregates() {
        let res = result(
            vec![
                outcome(1, 0, 0, 100, 100, 8),   // sd 1, resp 100
                outcome(2, 0, 100, 300, 100, 8), // sd 3, resp 300
            ],
            400,
        );
        let s = Summary::from_result("t", &res, 8);
        assert_eq!(s.jobs, 2);
        assert!((s.mean_response - 200.0).abs() < 1e-9);
        assert!((s.mean_slowdown - 2.0).abs() < 1e-9);
        assert!((s.mean_wait - 50.0).abs() < 1e-9);
        assert!((s.energy_kwh - 2.0).abs() < 1e-9);
        // core-seconds: 100·8 + 200·8 = 2400; capacity 400·8 = 3200.
        assert!((s.utilization - 0.75).abs() < 1e-9);
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        let res = result(vec![outcome(1, 0, 0, 100, 1, 1)], 100);
        let s = Summary::from_result("t", &res, 1);
        assert!((s.mean_slowdown - 100.0).abs() < 1e-9);
        assert!((s.mean_bounded_slowdown - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_result_is_zeroed() {
        let s = Summary::from_result("t", &result(vec![], 0), 100);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_slowdown, 0.0);
        assert_eq!(s.utilization, 0.0);
    }

    #[test]
    fn tenant_summaries_split_by_label() {
        let mut a = outcome(1, 0, 0, 100, 100, 8); // wait 0, sd 1
        a.tenant = 1;
        let mut b = outcome(2, 0, 100, 300, 100, 8); // wait 100, sd 3
        b.tenant = 2;
        let mut c = outcome(3, 0, 50, 150, 100, 8); // wait 50, sd 1.5
        c.tenant = 1;
        c.nodes = 2;
        let res = result(vec![a, b, c], 400);
        let ts = tenant_summaries(&res);
        assert_eq!(ts.len(), 2);
        assert_eq!((ts[0].tenant, ts[0].jobs), (1, 2));
        assert!((ts[0].job_share - 2.0 / 3.0).abs() < 1e-12);
        assert!((ts[0].mean_wait - 25.0).abs() < 1e-9);
        assert_eq!(ts[0].node_seconds, 100 + 2 * 100);
        assert_eq!((ts[1].tenant, ts[1].jobs), (2, 1));
        assert!((ts[1].mean_slowdown - 3.0).abs() < 1e-9);
    }

    #[test]
    fn untenanted_runs_have_no_tenant_breakdown() {
        let res = result(vec![outcome(1, 0, 0, 100, 100, 8)], 100);
        assert!(tenant_summaries(&res).is_empty());
        assert!(tenant_summaries(&result(vec![], 0)).is_empty());
    }
}
