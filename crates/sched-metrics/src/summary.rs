//! Headline aggregates — the paper's §4 metric definitions.
//!
//! * **Makespan**: "difference between the last job end time and the first
//!   job arrival time".
//! * **Average response time**: mean of `end − submit`.
//! * **Average slowdown**: mean of `response / static execution time`.
//! * **Energy**: integral of the power model over the makespan.

use simkit::Welford;
use slurm_sim::SimResult;

/// Aggregate view of one run.
#[derive(Debug, Clone)]
pub struct Summary {
    pub label: String,
    pub jobs: usize,
    pub makespan: u64,
    pub mean_response: f64,
    pub mean_slowdown: f64,
    pub mean_wait: f64,
    /// Bounded slowdown (runtime floored at 10 s) — robustness companion.
    pub mean_bounded_slowdown: f64,
    pub energy_kwh: f64,
    /// Machine utilisation: consumed core-seconds / (makespan × cores).
    pub utilization: f64,
    pub malleable_started: u64,
    pub unique_mates: u64,
    /// Standard deviation of slowdown (spread/fairness indicator).
    pub slowdown_stddev: f64,
}

impl Summary {
    /// Computes the summary; `total_cores` is the machine size for the
    /// utilisation figure.
    pub fn from_result(label: &str, res: &SimResult, total_cores: u64) -> Summary {
        let mut resp = Welford::new();
        let mut sd = Welford::new();
        let mut bsd = Welford::new();
        let mut wait = Welford::new();
        let mut core_seconds = 0.0;
        for o in &res.outcomes {
            resp.add(o.response() as f64);
            sd.add(o.slowdown());
            let denom = o.static_runtime.max(10) as f64;
            bsd.add((o.response() as f64 / denom).max(1.0));
            wait.add(o.wait() as f64);
            core_seconds += o.runtime() as f64 * o.procs.min(o.nodes as u64 * 10_000) as f64;
        }
        let util = if res.makespan == 0 || total_cores == 0 {
            0.0
        } else {
            (core_seconds / (res.makespan as f64 * total_cores as f64)).min(1.0)
        };
        Summary {
            label: label.to_string(),
            jobs: res.outcomes.len(),
            makespan: res.makespan,
            mean_response: resp.mean(),
            mean_slowdown: sd.mean(),
            mean_wait: wait.mean(),
            mean_bounded_slowdown: bsd.mean(),
            energy_kwh: res.energy_kwh(),
            utilization: util,
            malleable_started: res.stats.started_malleable,
            unique_mates: res.stats.unique_mates,
            slowdown_stddev: sd.stddev(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;
    use simkit::SimTime;
    use slurm_sim::{JobOutcome, SimStats};

    fn outcome(id: u64, submit: u64, start: u64, end: u64, static_rt: u64, procs: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime(submit),
            start: SimTime(start),
            end: SimTime(end),
            nodes: 1,
            procs,
            req_time: static_rt,
            static_runtime: static_rt,
            malleable_backfilled: false,
            was_mate: false,
            app: None,
        }
    }

    fn result(outcomes: Vec<JobOutcome>, makespan: u64) -> SimResult {
        SimResult {
            scheduler: "test",
            first_submit: SimTime(0),
            last_end: SimTime(makespan),
            makespan,
            energy_joules: 7.2e6,
            leftover_pending: 0,
            leftover_running: 0,
            stats: SimStats::default(),
            outcomes,
        }
    }

    #[test]
    fn summary_aggregates() {
        let res = result(
            vec![
                outcome(1, 0, 0, 100, 100, 8),   // sd 1, resp 100
                outcome(2, 0, 100, 300, 100, 8), // sd 3, resp 300
            ],
            400,
        );
        let s = Summary::from_result("t", &res, 8);
        assert_eq!(s.jobs, 2);
        assert!((s.mean_response - 200.0).abs() < 1e-9);
        assert!((s.mean_slowdown - 2.0).abs() < 1e-9);
        assert!((s.mean_wait - 50.0).abs() < 1e-9);
        assert!((s.energy_kwh - 2.0).abs() < 1e-9);
        // core-seconds: 100·8 + 200·8 = 2400; capacity 400·8 = 3200.
        assert!((s.utilization - 0.75).abs() < 1e-9);
    }

    #[test]
    fn bounded_slowdown_floors_short_jobs() {
        let res = result(vec![outcome(1, 0, 0, 100, 1, 1)], 100);
        let s = Summary::from_result("t", &res, 1);
        assert!((s.mean_slowdown - 100.0).abs() < 1e-9);
        assert!((s.mean_bounded_slowdown - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_result_is_zeroed() {
        let s = Summary::from_result("t", &result(vec![], 0), 100);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_slowdown, 0.0);
        assert_eq!(s.utilization, 0.0);
    }
}
