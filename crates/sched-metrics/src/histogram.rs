//! Fixed-bucket histograms: the latency/wait distribution primitive behind
//! `sd-loadgen`'s percentile report, the `/metrics` histogram series and
//! `--latency-out` CSV export.
//!
//! Buckets are cumulative-style like Prometheus: `bounds` holds ascending
//! upper bounds, with an implicit `+Inf` bucket after the last. Quantiles
//! are interpolated inside the winning bucket (assuming a uniform spread),
//! which is the proper way to report p50/p90/p99 from bucketed data — the
//! error is bounded by the bucket width instead of depending on sample
//! count like sorted-vector percentiles do.

use crate::percentiles::Percentiles;

#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// Per-bucket counts; `counts[bounds.len()]` is the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: Vec<f64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        let n = bounds.len() + 1;
        Histogram { bounds, counts: vec![0; n], count: 0, sum: 0.0, max: 0.0 }
    }

    /// Log-spaced bounds from `lo` to `hi` (inclusive-ish), `per_decade`
    /// buckets per decade — the shape used for latencies and waits.
    pub fn log_spaced(lo: f64, hi: f64, per_decade: u32) -> Histogram {
        debug_assert!(lo > 0.0 && hi > lo && per_decade > 0);
        let step = 10f64.powf(1.0 / per_decade as f64);
        let mut bounds = Vec::new();
        let mut b = lo;
        while b < hi * (1.0 + 1e-9) {
            bounds.push(b);
            b *= step;
        }
        Histogram::new(bounds)
    }

    /// Request-latency buckets in milliseconds: 10 µs .. 10 s.
    pub fn latency_ms() -> Histogram {
        Histogram::log_spaced(0.01, 10_000.0, 3)
    }

    /// Queue-wait buckets in (virtual) seconds: 1 s .. ~11 days.
    pub fn wait_seconds() -> Histogram {
        Histogram::log_spaced(1.0, 1_000_000.0, 2)
    }

    pub fn observe(&mut self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "merging unlike histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bucket-interpolated quantile, `q` in `[0, 1]`. The winning bucket's
    /// span is assumed uniformly filled; the overflow bucket reports the
    /// observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                if i == self.bounds.len() {
                    return self.max; // overflow bucket: best bound we have
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i].min(self.max);
                let frac = (rank - cum as f64) / c as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            cum = next;
        }
        self.max
    }

    /// p50/p90/p99/max from the buckets (`None` when empty) — drop-in for
    /// the sorted-vector [`Percentiles::compute`].
    pub fn percentiles(&self) -> Option<Percentiles> {
        if self.count == 0 {
            return None;
        }
        Some(Percentiles {
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            max: self.max,
        })
    }

    /// Deterministic CSV: one row per bucket (`le`, per-bucket count,
    /// cumulative count), overflow bucket as `+Inf`, then `sum`/`max`.
    pub fn csv(&self) -> String {
        let mut out = String::from("bucket_le,count,cumulative\n");
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if i == self.bounds.len() {
                out.push_str(&format!("+Inf,{c},{cum}\n"));
            } else {
                out.push_str(&format!("{},{c},{cum}\n", self.bounds[i]));
            }
        }
        out.push_str(&format!("sum,{},\n", self.sum));
        out.push_str(&format!("max,{},\n", self.max));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_and_moments() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[1, 2, 1, 1]);
        assert_eq!(h.sum(), 560.5);
        assert_eq!(h.max(), 500.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn boundary_value_lands_in_its_le_bucket() {
        // Prometheus `le` semantics: v == bound counts into that bucket.
        let mut h = Histogram::new(vec![1.0, 10.0]);
        h.observe(1.0);
        h.observe(10.0);
        assert_eq!(h.counts(), &[1, 1, 0]);
    }

    #[test]
    fn quantiles_interpolate_within_bucket() {
        let mut h = Histogram::new(vec![10.0, 20.0, 30.0]);
        for _ in 0..50 {
            h.observe(5.0); // bucket (0, 10]
        }
        for _ in 0..50 {
            h.observe(25.0); // bucket (20, 30]
        }
        // p50 sits exactly at the first bucket's upper edge.
        assert!((h.quantile(0.5) - 10.0).abs() < 1e-9);
        // p75 is halfway through the (20, 25] span (hi capped at max=25).
        let p75 = h.quantile(0.75);
        assert!(p75 > 20.0 && p75 <= 25.0, "p75={p75}");
        let p = h.percentiles().unwrap();
        assert_eq!(p.max, 25.0);
        assert!(p.p99 <= 25.0);
    }

    #[test]
    fn overflow_quantile_reports_observed_max() {
        let mut h = Histogram::new(vec![1.0]);
        h.observe(7.0);
        h.observe(9.0);
        assert_eq!(h.quantile(0.99), 9.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::latency_ms();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.percentiles().is_none());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::new(vec![1.0, 2.0]);
        let mut b = Histogram::new(vec![1.0, 2.0]);
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    fn csv_is_cumulative_and_labelled() {
        let mut h = Histogram::new(vec![1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        h.observe(9.0);
        let csv = h.csv();
        assert!(csv.starts_with("bucket_le,count,cumulative\n"));
        assert!(csv.contains("1,1,1\n"));
        assert!(csv.contains("2,1,2\n"));
        assert!(csv.contains("+Inf,1,3\n"));
        assert!(csv.contains("max,9,"));
    }

    #[test]
    fn log_spaced_covers_range() {
        let h = Histogram::latency_ms();
        let b = h.bounds();
        assert!(b.first().unwrap() <= &0.011);
        assert!(b.last().unwrap() >= &9_999.0);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
    }
}
