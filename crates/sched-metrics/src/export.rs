//! CSV export of figures and series for external plotting.
//!
//! The experiment binaries print human-readable tables; these writers emit
//! machine-readable CSV so the paper's plots can be regenerated with any
//! plotting tool. Output is plain `std::fmt::Write` — no serialisation
//! dependency needed for flat numeric tables.

use crate::heatmap::RatioHeatmap;
use crate::timeseries::DailySeries;
use std::fmt::Write as _;

/// CSV of a ratio heatmap: `runtime_class,node_bucket,ratio,count`.
pub fn heatmap_csv(h: &RatioHeatmap) -> String {
    let mut out = String::from("runtime_class,node_bucket,ratio,count\n");
    for r in 0..h.spec.runtime_buckets() {
        for n in 0..h.spec.node_buckets() {
            let idx = r * h.spec.node_buckets() + n;
            let ratio = h.ratios[idx]
                .map(|x| format!("{x:.4}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{},{},{},{}",
                h.spec.runtime_label(r),
                h.spec.node_label(n),
                ratio,
                h.counts[idx]
            )
            .expect("string write");
        }
    }
    out
}

/// CSV of two daily series side by side (Fig. 7's data):
/// `day,static_slowdown,sd_slowdown,malleable_starts,completed`.
pub fn daily_csv(baseline: &DailySeries, sd: &DailySeries) -> String {
    let days = baseline.days().max(sd.days());
    let mut out = String::from("day,static_slowdown,sd_slowdown,malleable_starts,completed\n");
    for d in 0..days {
        writeln!(
            out,
            "{},{:.3},{:.3},{},{}",
            d,
            baseline.slowdown.get(d).copied().unwrap_or(0.0),
            sd.slowdown.get(d).copied().unwrap_or(0.0),
            sd.malleable_started.get(d).copied().unwrap_or(0),
            sd.completed.get(d).copied().unwrap_or(0),
        )
        .expect("string write");
    }
    out
}

/// Generic CSV from a header and rows of numbers (normalised-metric sweeps).
pub fn series_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|x| format!("{x:.6}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::{HeatMetric, Heatmap, HeatmapSpec};

    #[test]
    fn series_csv_shape() {
        let csv = series_csv(&["a", "b"], &[vec![1.0, 2.0], vec![3.0, 4.5]]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,b");
        assert!(lines[2].starts_with("3.000000,4.5"));
    }

    #[test]
    fn daily_csv_includes_all_days() {
        let base = DailySeries {
            slowdown: vec![1.0, 2.0],
            completed: vec![3, 4],
            malleable_started: vec![0, 0],
        };
        let sd = DailySeries {
            slowdown: vec![0.5],
            completed: vec![3],
            malleable_started: vec![2],
        };
        let csv = daily_csv(&base, &sd);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,1.000,0.500,2,3"));
        assert!(csv.lines().nth(2).unwrap().starts_with("1,2.000,0.000,0,0"));
    }

    #[test]
    fn heatmap_csv_covers_every_cell() {
        let spec = HeatmapSpec::paper_style(4);
        let h = Heatmap::new(spec.clone(), HeatMetric::Slowdown);
        let h2 = Heatmap::new(spec.clone(), HeatMetric::Slowdown);
        let ratio = crate::heatmap::RatioHeatmap::compute(&h, &h2);
        let csv = heatmap_csv(&ratio);
        // header + runtime_buckets × node_buckets rows
        assert_eq!(
            csv.lines().count(),
            1 + spec.runtime_buckets() * spec.node_buckets()
        );
        // Empty cells serialise with an empty ratio field.
        assert!(csv.lines().nth(1).unwrap().contains(",,0"));
    }
}
