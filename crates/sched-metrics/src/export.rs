//! CSV/JSON export of figures, series and scenario campaigns.
//!
//! The experiment binaries print human-readable tables; these writers emit
//! machine-readable CSV/JSON so the paper's plots can be regenerated with
//! any plotting tool. Output is plain `std::fmt::Write` — no serialisation
//! dependency needed. All writers are deterministic: fixed key order, fixed
//! float formatting (Rust's shortest-roundtrip `Display`), no timestamps —
//! two runs of the same seeded experiment produce byte-identical files.

use crate::heatmap::RatioHeatmap;
use crate::summary::{Summary, TenantSummary};
use crate::timeseries::DailySeries;
use std::fmt::Write as _;

/// CSV of a ratio heatmap: `runtime_class,node_bucket,ratio,count`.
pub fn heatmap_csv(h: &RatioHeatmap) -> String {
    let mut out = String::from("runtime_class,node_bucket,ratio,count\n");
    for r in 0..h.spec.runtime_buckets() {
        for n in 0..h.spec.node_buckets() {
            let idx = r * h.spec.node_buckets() + n;
            let ratio = h.ratios[idx]
                .map(|x| format!("{x:.4}"))
                .unwrap_or_default();
            writeln!(
                out,
                "{},{},{},{}",
                h.spec.runtime_label(r),
                h.spec.node_label(n),
                ratio,
                h.counts[idx]
            )
            .expect("string write");
        }
    }
    out
}

/// CSV of two daily series side by side (Fig. 7's data):
/// `day,static_slowdown,sd_slowdown,malleable_starts,completed`.
pub fn daily_csv(baseline: &DailySeries, sd: &DailySeries) -> String {
    let days = baseline.days().max(sd.days());
    let mut out = String::from("day,static_slowdown,sd_slowdown,malleable_starts,completed\n");
    for d in 0..days {
        writeln!(
            out,
            "{},{:.3},{:.3},{},{}",
            d,
            baseline.slowdown.get(d).copied().unwrap_or(0.0),
            sd.slowdown.get(d).copied().unwrap_or(0.0),
            sd.malleable_started.get(d).copied().unwrap_or(0),
            sd.completed.get(d).copied().unwrap_or(0),
        )
        .expect("string write");
    }
    out
}

/// Generic CSV from a header and rows of numbers (normalised-metric sweeps).
pub fn series_csv(header: &[&str], rows: &[Vec<f64>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        let cells: Vec<String> = row.iter().map(|x| format!("{x:.6}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Per-row Δ-vs-baseline columns (the paper's "normalized to static
/// backfill" y-axes, as percentages: negative = the variant improves).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignDeltas {
    /// Label of the baseline policy the deltas are against (`static`).
    pub vs: String,
    pub d_makespan_pct: f64,
    pub d_response_pct: f64,
    pub d_slowdown_pct: f64,
    pub d_wait_pct: f64,
    pub d_energy_pct: f64,
}

impl CampaignDeltas {
    /// Δ% columns of `row` against `baseline` (same scenario point run under
    /// the baseline policy).
    pub fn against(row: &Summary, baseline: &Summary) -> CampaignDeltas {
        fn pct(v: f64, b: f64) -> f64 {
            if b == 0.0 {
                0.0
            } else {
                (v / b - 1.0) * 100.0
            }
        }
        CampaignDeltas {
            vs: baseline.label.clone(),
            d_makespan_pct: pct(row.makespan as f64, baseline.makespan as f64),
            d_response_pct: pct(row.mean_response, baseline.mean_response),
            d_slowdown_pct: pct(row.mean_slowdown, baseline.mean_slowdown),
            d_wait_pct: pct(row.mean_wait, baseline.mean_wait),
            d_energy_pct: pct(row.energy_kwh, baseline.energy_kwh),
        }
    }
}

/// One row of a scenario campaign: which run it was (scenario × sweep
/// variant × seed × scale) plus the run's [`Summary`] and, when the campaign
/// ran a baseline for the point, the Δ-vs-baseline columns.
#[derive(Debug, Clone)]
pub struct CampaignRow {
    pub scenario: String,
    /// Swept-axis assignment, e.g. `malleable_fraction=0.5 maxsd=10`
    /// (empty when the scenario has no sweep).
    pub variant: String,
    pub seed: u64,
    pub scale: f64,
    pub summary: Summary,
    /// Baseline-normalised Δ columns; `None` when no baseline was run.
    pub deltas: Option<CampaignDeltas>,
    /// Per-tenant breakdown ([`crate::summary::tenant_summaries`]); empty on
    /// untenanted runs.
    pub tenants: Vec<TenantSummary>,
}

/// The flat numeric fields of a [`CampaignRow`], in export order.
const CAMPAIGN_FIELDS: [&str; 11] = [
    "jobs",
    "makespan",
    "mean_response",
    "mean_slowdown",
    "mean_wait",
    "mean_bounded_slowdown",
    "slowdown_stddev",
    "energy_kwh",
    "utilization",
    "malleable_started",
    "unique_mates",
];

/// The Δ-vs-baseline columns, in export order (after the flat fields).
const DELTA_FIELDS: [&str; 5] = [
    "d_makespan_pct",
    "d_response_pct",
    "d_slowdown_pct",
    "d_wait_pct",
    "d_energy_pct",
];

fn delta_values(d: &CampaignDeltas) -> [f64; 5] {
    [
        d.d_makespan_pct,
        d.d_response_pct,
        d.d_slowdown_pct,
        d.d_wait_pct,
        d.d_energy_pct,
    ]
}

fn campaign_values(r: &CampaignRow) -> [f64; 11] {
    let s = &r.summary;
    [
        s.jobs as f64,
        s.makespan as f64,
        s.mean_response,
        s.mean_slowdown,
        s.mean_wait,
        s.mean_bounded_slowdown,
        s.slowdown_stddev,
        s.energy_kwh,
        s.utilization,
        s.malleable_started as f64,
        s.unique_mates as f64,
    ]
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` for export: integers without a trailing `.0`, everything
/// else with Rust's shortest-roundtrip `Display` (deterministic). Non-finite
/// values become `null` — `NaN`/`inf` are not valid JSON.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Rounds to 4 decimals — Δ columns are percentages; full f64 precision is
/// noise and bloats the export.
fn round4(v: f64) -> f64 {
    if v.is_finite() {
        (v * 1e4).round() / 1e4
    } else {
        v
    }
}

/// Deterministic JSON array of campaign rows: fixed key order, no
/// timestamps; identical inputs yield byte-identical output.
pub fn campaign_json(rows: &[CampaignRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let mut obj = format!(
            "  {{\"scenario\": \"{}\", \"variant\": \"{}\", \"policy\": \"{}\", \
             \"seed\": {}, \"scale\": {}",
            json_escape(&r.scenario),
            json_escape(&r.variant),
            json_escape(&r.summary.label),
            r.seed,
            fmt_num(r.scale),
        );
        for (k, v) in CAMPAIGN_FIELDS.iter().zip(campaign_values(r)) {
            let _ = write!(obj, ", \"{k}\": {}", fmt_num(v));
        }
        match &r.deltas {
            Some(d) => {
                let _ = write!(obj, ", \"baseline\": \"{}\"", json_escape(&d.vs));
                for (k, v) in DELTA_FIELDS.iter().zip(delta_values(d)) {
                    let _ = write!(obj, ", \"{k}\": {}", fmt_num(round4(v)));
                }
            }
            None => {
                let _ = write!(obj, ", \"baseline\": null");
                for k in DELTA_FIELDS {
                    let _ = write!(obj, ", \"{k}\": null");
                }
            }
        }
        let _ = write!(obj, ", \"tenants\": [");
        for (j, t) in r.tenants.iter().enumerate() {
            let _ = write!(
                obj,
                "{}{{\"tenant\": {}, \"jobs\": {}, \"job_share\": {}, \
                 \"mean_wait\": {}, \"mean_slowdown\": {}, \"node_seconds\": {}}}",
                if j == 0 { "" } else { ", " },
                t.tenant,
                t.jobs,
                fmt_num(round4(t.job_share)),
                fmt_num(round4(t.mean_wait)),
                fmt_num(round4(t.mean_slowdown)),
                t.node_seconds,
            );
        }
        obj.push(']');
        obj.push('}');
        if i + 1 < rows.len() {
            obj.push(',');
        }
        out.push_str(&obj);
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Deterministic CSV of campaign rows (same columns as the JSON export).
pub fn campaign_csv(rows: &[CampaignRow]) -> String {
    let mut out = String::from("scenario,variant,policy,seed,scale");
    for k in CAMPAIGN_FIELDS {
        out.push(',');
        out.push_str(k);
    }
    out.push_str(",baseline");
    for k in DELTA_FIELDS {
        out.push(',');
        out.push_str(k);
    }
    out.push('\n');
    for r in rows {
        let _ = write!(
            out,
            "{},{},{},{},{}",
            r.scenario.replace(',', ";"),
            r.variant.replace(',', ";"),
            r.summary.label.replace(',', ";"),
            r.seed,
            fmt_num(r.scale)
        );
        for v in campaign_values(r) {
            out.push(',');
            out.push_str(&fmt_num(v));
        }
        match &r.deltas {
            Some(d) => {
                out.push(',');
                out.push_str(&d.vs.replace(',', ";"));
                for v in delta_values(d) {
                    out.push(',');
                    out.push_str(&fmt_num(round4(v)));
                }
            }
            None => out.push_str(",,,,,,"),
        }
        out.push('\n');
    }
    out
}

/// Long-format per-tenant companion to [`campaign_csv`]: one line per
/// (campaign row, tenant). Untenanted rows contribute nothing; the header is
/// always present so the file shape is stable. Deterministic like the other
/// writers — identical rows yield byte-identical output.
pub fn tenant_csv(rows: &[CampaignRow]) -> String {
    let mut out = String::from(
        "scenario,variant,policy,seed,tenant,jobs,job_share,mean_wait,mean_slowdown,node_seconds\n",
    );
    for r in rows {
        for t in &r.tenants {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{}",
                r.scenario.replace(',', ";"),
                r.variant.replace(',', ";"),
                r.summary.label.replace(',', ";"),
                r.seed,
                t.tenant,
                t.jobs,
                fmt_num(round4(t.job_share)),
                fmt_num(round4(t.mean_wait)),
                fmt_num(round4(t.mean_slowdown)),
                t.node_seconds,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::{HeatMetric, Heatmap, HeatmapSpec};

    #[test]
    fn series_csv_shape() {
        let csv = series_csv(&["a", "b"], &[vec![1.0, 2.0], vec![3.0, 4.5]]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "a,b");
        assert!(lines[2].starts_with("3.000000,4.5"));
    }

    #[test]
    fn daily_csv_includes_all_days() {
        let base = DailySeries {
            slowdown: vec![1.0, 2.0],
            completed: vec![3, 4],
            malleable_started: vec![0, 0],
        };
        let sd = DailySeries {
            slowdown: vec![0.5],
            completed: vec![3],
            malleable_started: vec![2],
        };
        let csv = daily_csv(&base, &sd);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().nth(1).unwrap().starts_with("0,1.000,0.500,2,3"));
        assert!(csv.lines().nth(2).unwrap().starts_with("1,2.000,0.000,0,0"));
    }

    fn row(scenario: &str, variant: &str, seed: u64) -> CampaignRow {
        let s = Summary {
            label: "MAXSD 10".into(),
            jobs: 100,
            makespan: 5000,
            mean_response: 321.5,
            mean_slowdown: 2.25,
            mean_wait: 12.0,
            mean_bounded_slowdown: 1.5,
            energy_kwh: 3.0,
            utilization: 0.75,
            malleable_started: 7,
            unique_mates: 3,
            slowdown_stddev: 0.5,
        };
        CampaignRow {
            scenario: scenario.into(),
            variant: variant.into(),
            seed,
            scale: 0.05,
            summary: s,
            deltas: None,
            tenants: vec![],
        }
    }

    fn tenant(tenant: u32, jobs: usize, share: f64) -> TenantSummary {
        TenantSummary {
            tenant,
            jobs,
            job_share: share,
            mean_wait: 12.5,
            mean_slowdown: 2.0,
            node_seconds: 1000,
        }
    }

    #[test]
    fn campaign_json_is_deterministic_and_escaped() {
        let rows = vec![row("bursty", "maxsd=10 \"q\"", 1), row("bursty", "maxsd=inf", 2)];
        let a = campaign_json(&rows);
        let b = campaign_json(&rows);
        assert_eq!(a, b, "byte-identical across calls");
        assert!(a.starts_with("[\n"));
        assert!(a.ends_with("]\n"));
        assert!(a.contains("\\\"q\\\""), "quotes escaped: {a}");
        assert!(a.contains("\"mean_slowdown\": 2.25"));
        assert!(a.contains("\"makespan\": 5000"), "ints have no .0");
        assert_eq!(a.matches("\"scenario\"").count(), 2);
    }

    #[test]
    fn campaign_csv_shape_matches_json_fields() {
        let rows = vec![row("a,b", "", 1)];
        let csv = campaign_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        let header_cols = lines[0].split(',').count();
        assert_eq!(lines[1].split(',').count(), header_cols);
        assert!(lines[1].starts_with("a;b,,MAXSD 10,1,0.05"), "{}", lines[1]);
    }

    #[test]
    fn campaign_exports_carry_delta_columns() {
        let mut r = row("w3", "maxsd=10", 1);
        let mut base = r.summary.clone();
        base.label = "static".into();
        base.makespan = 10_000;
        base.mean_slowdown = 4.5;
        base.energy_kwh = 6.0;
        r.summary.makespan = 9_000;
        r.deltas = Some(CampaignDeltas::against(&r.summary, &base));
        let json = campaign_json(std::slice::from_ref(&r));
        assert!(json.contains("\"baseline\": \"static\""), "{json}");
        assert!(json.contains("\"d_makespan_pct\": -10"), "{json}");
        assert!(json.contains("\"d_slowdown_pct\": -50"), "{json}");
        assert!(json.contains("\"d_energy_pct\": -50"), "{json}");
        let csv = campaign_csv(&[r]);
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with(
            "baseline,d_makespan_pct,d_response_pct,d_slowdown_pct,d_wait_pct,d_energy_pct"
        ));
        let line = csv.lines().nth(1).unwrap();
        assert_eq!(line.split(',').count(), header.split(',').count());
        assert!(line.contains(",static,-10,"), "{line}");
    }

    #[test]
    fn campaign_exports_without_baseline_are_padded() {
        let r = row("w3", "", 1);
        assert!(r.deltas.is_none());
        let json = campaign_json(std::slice::from_ref(&r));
        assert!(json.contains("\"baseline\": null"), "{json}");
        assert!(json.contains("\"d_energy_pct\": null"), "{json}");
        let csv = campaign_csv(&[r]);
        let header_cols = csv.lines().next().unwrap().split(',').count();
        assert_eq!(csv.lines().nth(1).unwrap().split(',').count(), header_cols);
    }

    #[test]
    fn campaign_json_inlines_tenant_breakdowns() {
        let mut r = row("tenant-mix", "tenant_skew=1", 1);
        r.tenants = vec![tenant(1, 60, 0.6), tenant(2, 40, 0.4)];
        let json = campaign_json(std::slice::from_ref(&r));
        assert!(
            json.contains("\"tenants\": [{\"tenant\": 1, \"jobs\": 60, \"job_share\": 0.6"),
            "{json}"
        );
        assert!(json.contains("{\"tenant\": 2, \"jobs\": 40"), "{json}");
        // Untenanted rows carry an empty array, keeping the shape stable.
        let plain = campaign_json(&[row("w3", "", 1)]);
        assert!(plain.contains("\"tenants\": []"), "{plain}");
        assert_eq!(json, campaign_json(&[r]), "byte-identical across calls");
    }

    #[test]
    fn tenant_csv_is_long_format() {
        let mut r = row("tenant-mix", "quota_fraction=0.5", 3);
        r.tenants = vec![tenant(1, 60, 0.6), tenant(2, 40, 0.4)];
        let csv = tenant_csv(&[r.clone(), row("w3", "", 1)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 tenants; untenanted row silent");
        assert_eq!(
            lines[0],
            "scenario,variant,policy,seed,tenant,jobs,job_share,mean_wait,mean_slowdown,node_seconds"
        );
        assert_eq!(lines[1], "tenant-mix,quota_fraction=0.5,MAXSD 10,3,1,60,0.6,12.5,2,1000");
        assert_eq!(csv, tenant_csv(&[r, row("w3", "", 1)]), "deterministic");
    }

    #[test]
    fn deltas_against_self_are_zero() {
        let s = row("x", "", 1).summary;
        let d = CampaignDeltas::against(&s, &s);
        assert_eq!(d.d_makespan_pct, 0.0);
        assert_eq!(d.d_slowdown_pct, 0.0);
        assert_eq!(d.d_energy_pct, 0.0);
    }

    #[test]
    fn fmt_num_roundtrip_friendly() {
        assert_eq!(fmt_num(5000.0), "5000");
        assert_eq!(fmt_num(0.05), "0.05");
        assert_eq!(fmt_num(-1.5), "-1.5");
        assert_eq!(fmt_num(f64::NAN), "null", "NaN is not valid JSON");
        assert_eq!(fmt_num(f64::INFINITY), "null");
    }

    #[test]
    fn campaign_json_survives_degenerate_metrics() {
        let mut r = row("empty", "", 1);
        r.summary.mean_slowdown = f64::NAN;
        r.summary.utilization = f64::INFINITY;
        let json = campaign_json(&[r]);
        assert!(json.contains("\"mean_slowdown\": null"), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn heatmap_csv_covers_every_cell() {
        let spec = HeatmapSpec::paper_style(4);
        let h = Heatmap::new(spec.clone(), HeatMetric::Slowdown);
        let h2 = Heatmap::new(spec.clone(), HeatMetric::Slowdown);
        let ratio = crate::heatmap::RatioHeatmap::compute(&h, &h2);
        let csv = heatmap_csv(&ratio);
        // header + runtime_buckets × node_buckets rows
        assert_eq!(
            csv.lines().count(),
            1 + spec.runtime_buckets() * spec.node_buckets()
        );
        // Empty cells serialise with an empty ratio field.
        assert!(csv.lines().nth(1).unwrap().contains(",,0"));
    }
}
