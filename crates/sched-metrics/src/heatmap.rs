//! Job-category heatmaps (paper Figs. 4–6).
//!
//! The paper partitions Workload 4's jobs "in categories depending on the
//! requested resources and runtime" and reports, per cell, the **ratio
//! between static backfill and SD-Policy** for slowdown (Fig. 4), runtime
//! (Fig. 5) and wait time (Fig. 6) — values > 1 mean SD-Policy improved the
//! category.

use simkit::Welford;
use slurm_sim::JobOutcome;

/// Bucketing specification: node-count and runtime class edges.
#[derive(Debug, Clone)]
pub struct HeatmapSpec {
    /// Upper bounds (inclusive) of node buckets; a final open bucket catches
    /// the rest. E.g. `[1, 2, 4, …]`.
    pub node_edges: Vec<u32>,
    /// Upper bounds (inclusive) of runtime classes in seconds.
    pub runtime_edges: Vec<u64>,
}

impl HeatmapSpec {
    /// The paper-style categories: power-of-two nodes up to `max_nodes`,
    /// runtime classes 1 h / 4 h / 12 h / 1 d / beyond.
    pub fn paper_style(max_nodes: u32) -> HeatmapSpec {
        let mut node_edges = Vec::new();
        let mut n = 1u32;
        while n < max_nodes {
            node_edges.push(n);
            n *= 2;
        }
        node_edges.push(max_nodes);
        HeatmapSpec {
            node_edges,
            runtime_edges: vec![3_600, 4 * 3_600, 12 * 3_600, 24 * 3_600],
        }
    }

    pub fn node_buckets(&self) -> usize {
        self.node_edges.len() + 1
    }

    pub fn runtime_buckets(&self) -> usize {
        self.runtime_edges.len() + 1
    }

    pub fn node_bucket(&self, nodes: u32) -> usize {
        self.node_edges.partition_point(|&e| e < nodes)
    }

    pub fn runtime_bucket(&self, runtime: u64) -> usize {
        self.runtime_edges.partition_point(|&e| e < runtime)
    }

    /// Label of node bucket `i`, e.g. `"3-4"` or `">64"`.
    pub fn node_label(&self, i: usize) -> String {
        if i == 0 {
            format!("<={}", self.node_edges[0])
        } else if i < self.node_edges.len() {
            format!("{}-{}", self.node_edges[i - 1] + 1, self.node_edges[i])
        } else {
            format!(">{}", self.node_edges.last().unwrap())
        }
    }

    /// Label of runtime bucket `i`, e.g. `"<=1h"`.
    pub fn runtime_label(&self, i: usize) -> String {
        let fmt = |s: u64| {
            if s >= 86_400 {
                format!("{}d", s / 86_400)
            } else {
                format!("{}h", s / 3_600)
            }
        };
        if i == 0 {
            format!("<={}", fmt(self.runtime_edges[0]))
        } else if i < self.runtime_edges.len() {
            format!(
                "{}-{}",
                fmt(self.runtime_edges[i - 1]),
                fmt(self.runtime_edges[i])
            )
        } else {
            format!(">{}", fmt(*self.runtime_edges.last().unwrap()))
        }
    }
}

/// Which per-job metric a heatmap aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatMetric {
    Slowdown,
    Runtime,
    WaitTime,
}

impl HeatMetric {
    fn of(self, o: &JobOutcome) -> f64 {
        match self {
            HeatMetric::Slowdown => o.slowdown(),
            HeatMetric::Runtime => o.runtime() as f64,
            HeatMetric::WaitTime => o.wait() as f64,
        }
    }
}

/// Mean of one metric per (runtime class × node bucket) cell.
#[derive(Debug, Clone)]
pub struct Heatmap {
    pub spec: HeatmapSpec,
    pub metric: HeatMetric,
    cells: Vec<Welford>, // row-major: runtime bucket × node bucket
}

impl Heatmap {
    pub fn new(spec: HeatmapSpec, metric: HeatMetric) -> Heatmap {
        let cells = vec![Welford::new(); spec.node_buckets() * spec.runtime_buckets()];
        Heatmap {
            spec,
            metric,
            cells,
        }
    }

    pub fn build(spec: HeatmapSpec, metric: HeatMetric, outcomes: &[JobOutcome]) -> Heatmap {
        let mut h = Heatmap::new(spec, metric);
        for o in outcomes {
            h.add(o);
        }
        h
    }

    pub fn add(&mut self, o: &JobOutcome) {
        // Bucket by the *requested* shape (category identity must match
        // across policies even when SD stretches the actual runtime).
        let r = self.spec.runtime_bucket(o.static_runtime);
        let n = self.spec.node_bucket(o.nodes);
        let idx = r * self.spec.node_buckets() + n;
        self.cells[idx].add(self.metric.of(o));
    }

    pub fn cell(&self, runtime_bucket: usize, node_bucket: usize) -> &Welford {
        &self.cells[runtime_bucket * self.spec.node_buckets() + node_bucket]
    }

    pub fn cell_mean(&self, runtime_bucket: usize, node_bucket: usize) -> f64 {
        self.cell(runtime_bucket, node_bucket).mean()
    }

    pub fn cell_count(&self, runtime_bucket: usize, node_bucket: usize) -> u64 {
        self.cell(runtime_bucket, node_bucket).count()
    }
}

/// Ratio of two heatmaps (baseline / variant): the paper's Figs. 4–6 with
/// baseline = static backfill and variant = SD-Policy. Ratio > 1 ⇒ the
/// variant improved that category.
#[derive(Debug, Clone)]
pub struct RatioHeatmap {
    pub spec: HeatmapSpec,
    pub metric: HeatMetric,
    pub ratios: Vec<Option<f64>>, // row-major; None = empty cell
    pub counts: Vec<u64>,
}

impl RatioHeatmap {
    pub fn compute(baseline: &Heatmap, variant: &Heatmap) -> RatioHeatmap {
        assert_eq!(baseline.spec.node_buckets(), variant.spec.node_buckets());
        assert_eq!(
            baseline.spec.runtime_buckets(),
            variant.spec.runtime_buckets()
        );
        assert_eq!(baseline.metric, variant.metric);
        let nb = baseline.spec.node_buckets();
        let rb = baseline.spec.runtime_buckets();
        let mut ratios = Vec::with_capacity(nb * rb);
        let mut counts = Vec::with_capacity(nb * rb);
        for r in 0..rb {
            for n in 0..nb {
                let b = baseline.cell(r, n);
                let v = variant.cell(r, n);
                counts.push(b.count().min(v.count()));
                if b.count() == 0 || v.count() == 0 || v.mean() <= 0.0 {
                    ratios.push(None);
                } else {
                    ratios.push(Some(b.mean() / v.mean()));
                }
            }
        }
        RatioHeatmap {
            spec: baseline.spec.clone(),
            metric: baseline.metric,
            ratios,
            counts,
        }
    }

    pub fn ratio(&self, runtime_bucket: usize, node_bucket: usize) -> Option<f64> {
        self.ratios[runtime_bucket * self.spec.node_buckets() + node_bucket]
    }

    /// Renders the heatmap as an aligned text grid (rows = runtime classes).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let nb = self.spec.node_buckets();
        let rb = self.spec.runtime_buckets();
        out.push_str(&format!("{:>12}", "runtime\\nodes"));
        for n in 0..nb {
            out.push_str(&format!("{:>10}", self.spec.node_label(n)));
        }
        out.push('\n');
        for r in 0..rb {
            out.push_str(&format!("{:>12}", self.spec.runtime_label(r)));
            for n in 0..nb {
                match self.ratio(r, n) {
                    Some(x) => out.push_str(&format!("{x:>10.2}")),
                    None => out.push_str(&format!("{:>10}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;
    use simkit::SimTime;

    fn outcome(nodes: u32, static_rt: u64, wait: u64, stretch: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(1),
            submit: SimTime(0),
            start: SimTime(wait),
            end: SimTime(wait + static_rt + stretch),
            nodes,
            procs: nodes as u64 * 16,
            req_time: static_rt,
            static_runtime: static_rt,
            malleable_backfilled: false,
            was_mate: false,
            app: None,
            tenant: 0,
        }
    }

    #[test]
    fn paper_spec_buckets() {
        let spec = HeatmapSpec::paper_style(1024);
        assert_eq!(spec.node_bucket(1), 0);
        assert_eq!(spec.node_bucket(2), 1);
        assert_eq!(spec.node_bucket(3), 2);
        assert_eq!(spec.node_bucket(1024), spec.node_edges.len() - 1);
        assert_eq!(spec.node_bucket(5000), spec.node_edges.len());
        assert_eq!(spec.runtime_bucket(100), 0);
        assert_eq!(spec.runtime_bucket(3_600), 0);
        assert_eq!(spec.runtime_bucket(3_601), 1);
        assert_eq!(spec.runtime_bucket(90_000), 4);
    }

    #[test]
    fn labels_are_readable() {
        let spec = HeatmapSpec::paper_style(8);
        assert_eq!(spec.node_label(0), "<=1");
        assert_eq!(spec.node_label(1), "2-2");
        assert_eq!(spec.node_label(4), ">8");
        assert_eq!(spec.runtime_label(0), "<=1h");
        assert_eq!(spec.runtime_label(3), "12h-1d");
        assert_eq!(spec.runtime_label(4), ">1d");
    }

    #[test]
    fn cells_accumulate_means() {
        let spec = HeatmapSpec::paper_style(8);
        let mut h = Heatmap::new(spec, HeatMetric::Slowdown);
        h.add(&outcome(1, 100, 100, 0)); // slowdown 2
        h.add(&outcome(1, 100, 300, 0)); // slowdown 4
        assert_eq!(h.cell_count(0, 0), 2);
        assert!((h.cell_mean(0, 0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_heatmap_divides_cellwise() {
        let spec = HeatmapSpec::paper_style(8);
        let mut stat = Heatmap::new(spec.clone(), HeatMetric::WaitTime);
        let mut sd = Heatmap::new(spec, HeatMetric::WaitTime);
        stat.add(&outcome(2, 100, 400, 0));
        sd.add(&outcome(2, 100, 100, 0));
        let ratio = RatioHeatmap::compute(&stat, &sd);
        assert!((ratio.ratio(0, 1).unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(ratio.ratio(0, 0), None, "empty cells are None");
    }

    #[test]
    fn render_contains_labels_and_values() {
        let spec = HeatmapSpec::paper_style(4);
        let mut stat = Heatmap::new(spec.clone(), HeatMetric::Slowdown);
        let mut sd = Heatmap::new(spec, HeatMetric::Slowdown);
        stat.add(&outcome(1, 100, 100, 0));
        sd.add(&outcome(1, 100, 0, 0));
        let r = RatioHeatmap::compute(&stat, &sd);
        let text = r.render();
        assert!(text.contains("<=1"));
        assert!(text.contains("2.00"), "{text}");
    }

    #[test]
    fn category_identity_uses_static_runtime() {
        // An SD-stretched job must land in the same runtime class as its
        // static twin.
        let spec = HeatmapSpec::paper_style(8);
        let mut h = Heatmap::new(spec, HeatMetric::Runtime);
        h.add(&outcome(1, 3_000, 0, 2_000)); // actual runtime 5000 > 1 h
        assert_eq!(h.cell_count(0, 0), 1, "bucketed by static runtime");
    }
}
