//! Distribution views of the per-job metrics.
//!
//! Averages hide the fairness story the paper tells in §4.2 (SD-Policy
//! "generates a more fair distribution of the slowdown"); percentiles and
//! tail ratios make it visible.

use slurm_sim::JobOutcome;

/// Percentile summary of one per-job metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Percentiles {
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub max: f64,
}

impl Percentiles {
    /// Computes percentiles with linear interpolation; `None` when empty.
    pub fn compute(values: &mut [f64]) -> Option<Percentiles> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let at = |q: f64| -> f64 {
            let pos = q * (values.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                values[lo]
            } else {
                let frac = pos - lo as f64;
                values[lo] * (1.0 - frac) + values[hi] * frac
            }
        };
        Some(Percentiles {
            p50: at(0.50),
            p90: at(0.90),
            p99: at(0.99),
            max: *values.last().unwrap(),
        })
    }

    /// Slowdown percentiles of a run.
    pub fn of_slowdown(outcomes: &[JobOutcome]) -> Option<Percentiles> {
        let mut v: Vec<f64> = outcomes.iter().map(|o| o.slowdown()).collect();
        Percentiles::compute(&mut v)
    }

    /// Wait-time percentiles of a run (seconds).
    pub fn of_wait(outcomes: &[JobOutcome]) -> Option<Percentiles> {
        let mut v: Vec<f64> = outcomes.iter().map(|o| o.wait() as f64).collect();
        Percentiles::compute(&mut v)
    }

    /// Tail-to-median ratio — a single-number fairness indicator.
    pub fn tail_ratio(&self) -> f64 {
        if self.p50 <= 0.0 {
            0.0
        } else {
            self.p99 / self.p50
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;
    use simkit::SimTime;

    #[test]
    fn percentiles_of_known_sequence() {
        let mut v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::compute(&mut v).unwrap();
        assert!((p.p50 - 50.5).abs() < 1e-9);
        assert!((p.p90 - 90.1).abs() < 1e-9);
        assert!((p.p99 - 99.01).abs() < 1e-9);
        assert_eq!(p.max, 100.0);
    }

    #[test]
    fn single_value() {
        let mut v = vec![7.0];
        let p = Percentiles::compute(&mut v).unwrap();
        assert_eq!(p, Percentiles { p50: 7.0, p90: 7.0, p99: 7.0, max: 7.0 });
    }

    #[test]
    fn empty_is_none() {
        assert!(Percentiles::compute(&mut [] as &mut [f64]).is_none());
    }

    #[test]
    fn unsorted_input_handled() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let p = Percentiles::compute(&mut v).unwrap();
        assert_eq!(p.p50, 3.0);
        assert_eq!(p.max, 5.0);
    }

    #[test]
    fn outcome_views() {
        let outcome = |wait: u64, rt: u64| JobOutcome {
            id: JobId(1),
            submit: SimTime(0),
            start: SimTime(wait),
            end: SimTime(wait + rt),
            nodes: 1,
            procs: 8,
            req_time: rt,
            static_runtime: rt,
            malleable_backfilled: false,
            was_mate: false,
            app: None,
            tenant: 0,
        };
        let outs = vec![outcome(0, 100), outcome(300, 100), outcome(100, 100)];
        let sd = Percentiles::of_slowdown(&outs).unwrap();
        assert_eq!(sd.p50, 2.0); // slowdowns 1, 2, 4
        assert_eq!(sd.max, 4.0);
        let w = Percentiles::of_wait(&outs).unwrap();
        assert_eq!(w.p50, 100.0);
        assert!(sd.tail_ratio() > 1.0);
    }

    #[test]
    fn tail_ratio_guards_zero_median() {
        let p = Percentiles { p50: 0.0, p90: 1.0, p99: 2.0, max: 3.0 };
        assert_eq!(p.tail_ratio(), 0.0);
    }
}
