//! Plain-text tables for the experiment binaries.

/// Column-aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column, right-align the rest.
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals (experiment-table convention).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with sign, e.g. `+7.0%` / `-3.2%`.
pub fn pct(x: f64) -> String {
    format!("{x:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("    1"));
        assert!(lines[3].ends_with("10000"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(7.04), "+7.0%");
        assert_eq!(pct(-3.25), "-3.2%");
    }
}
