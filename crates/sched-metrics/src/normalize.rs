//! Baseline normalisation (the y-axes of Figs. 1–3, 8, 9).

/// `value / baseline` — the paper's "normalized to static backfill
/// simulation". Returns 1.0 for a zero baseline (degenerate but safe).
pub fn normalized(value: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        1.0
    } else {
        value / baseline
    }
}

/// Improvement percentage: positive = the variant is better (lower).
/// `improvement_pct(30, 100) = 70` — "reduction of … up to 70 %".
pub fn improvement_pct(value: f64, baseline: f64) -> f64 {
    (1.0 - normalized(value, baseline)) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(normalized(50.0, 100.0), 0.5);
        assert_eq!(normalized(100.0, 100.0), 1.0);
        assert_eq!(normalized(5.0, 0.0), 1.0);
    }

    #[test]
    fn improvements() {
        assert!((improvement_pct(30.0, 100.0) - 70.0).abs() < 1e-12);
        assert!((improvement_pct(100.0, 100.0)).abs() < 1e-12);
        assert!(improvement_pct(120.0, 100.0) < 0.0, "regressions negative");
    }
}
