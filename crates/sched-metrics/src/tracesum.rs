//! Trace summarizer: turns a decision-trace event stream (DESIGN.md §12)
//! into the two views a workload post-mortem needs — the **decision mix**
//! (how often each decision fired) and the **wait-time decomposition**
//! (for every job that eventually started, what it spent its queue time
//! waiting *on*: a reservation ahead of it, a tenant quota, or simply no
//! fit in the machine).

use crate::table::Table;
use sd_trace::{TraceEvent, TraceKind};
use std::collections::HashMap;

/// Stable order for the decision-mix table (every kind a ring can hold).
pub const KIND_NAMES: [&str; 12] = [
    "pass_begin",
    "pass_end",
    "submitted",
    "started",
    "easy_reserved",
    "backfill_rejected",
    "quota_skipped",
    "shrunk",
    "expanded",
    "relocated",
    "cancelled",
    "completed",
];

/// Where a started job's queue wait went, summed over jobs whose dominant
/// pre-start signal was each cause. All values in virtual seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WaitDecomposition {
    /// Dominant signal: an EASY/conservative reservation was parked ahead
    /// of or for the job — it queued behind the profile.
    pub reserved_s: f64,
    /// Dominant signal: the tenant's quota blocked it.
    pub quota_s: f64,
    /// Dominant signal: backfill rejected it (no fit now / never fits /
    /// fragmentation).
    pub no_fit_s: f64,
    /// The job waited but no decision about it survived in the stream
    /// (e.g. the ring wrapped) — kept separate so the three causes above
    /// always mean what they say.
    pub unattributed_s: f64,
    /// Jobs that started with a non-zero wait.
    pub waited_jobs: u64,
}

impl WaitDecomposition {
    pub fn total_s(&self) -> f64 {
        self.reserved_s + self.quota_s + self.no_fit_s + self.unattributed_s
    }
}

/// Aggregate view of one trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    pub events: usize,
    /// Completed scheduler passes (`pass_end` events).
    pub passes: u64,
    /// Jobs started during passes (sum of `pass_end.started`).
    pub started_in_passes: u64,
    /// `(kind name, count)` in [`KIND_NAMES`] order, zero-count kinds kept.
    pub decision_mix: Vec<(&'static str, u64)>,
    pub wait: WaitDecomposition,
}

/// Summarize a stream (as returned by `TraceRing::snapshot` — ascending
/// sequence order is assumed for the wait attribution).
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut counts: HashMap<&'static str, u64> = HashMap::new();
    let mut passes = 0u64;
    let mut started_in_passes = 0u64;
    // Per pending job: (reservation signals, quota signals, no-fit signals)
    // seen since submission.
    let mut signals: HashMap<u64, [u64; 3]> = HashMap::new();
    let mut wait = WaitDecomposition::default();

    for ev in events {
        *counts.entry(ev.kind.name()).or_insert(0) += 1;
        match ev.kind {
            TraceKind::PassEnd { started, .. } => {
                passes += 1;
                started_in_passes += started as u64;
            }
            TraceKind::Submitted { job } => {
                signals.insert(job, [0; 3]);
            }
            TraceKind::EasyReserved { job, .. } => {
                signals.entry(job).or_insert([0; 3])[0] += 1;
            }
            TraceKind::QuotaSkipped { job, .. } => {
                signals.entry(job).or_insert([0; 3])[1] += 1;
            }
            TraceKind::BackfillRejected { job, .. } => {
                signals.entry(job).or_insert([0; 3])[2] += 1;
            }
            TraceKind::Started { job, wait: w, .. } => {
                if w > 0 {
                    wait.waited_jobs += 1;
                    let s = signals.get(&job).copied().unwrap_or([0; 3]);
                    let slot = if s == [0; 3] {
                        &mut wait.unattributed_s
                    } else if s[1] >= s[0] && s[1] >= s[2] {
                        // Quota wins ties: it is the only *policy* cause.
                        &mut wait.quota_s
                    } else if s[0] >= s[2] {
                        &mut wait.reserved_s
                    } else {
                        &mut wait.no_fit_s
                    };
                    *slot += w as f64;
                }
                signals.remove(&job);
            }
            TraceKind::Cancelled { job } => {
                signals.remove(&job);
            }
            _ => {}
        }
    }

    let decision_mix = KIND_NAMES
        .iter()
        .map(|&k| (k, counts.get(k).copied().unwrap_or(0)))
        .collect();
    TraceSummary { events: events.len(), passes, started_in_passes, decision_mix, wait }
}

impl TraceSummary {
    /// Two plain-text tables (decision mix, wait decomposition) for the
    /// experiment binaries.
    pub fn render(&self) -> String {
        let mut mix = Table::new(&["decision", "count"]);
        for &(k, c) in &self.decision_mix {
            if c > 0 {
                mix.row(vec![k.to_string(), format!("{c}")]);
            }
        }
        let total = self.wait.total_s().max(f64::MIN_POSITIVE);
        let mut wt = Table::new(&["wait cause", "virtual s", "share"]);
        for (label, v) in [
            ("queued_behind_reservation", self.wait.reserved_s),
            ("quota", self.wait.quota_s),
            ("no_fit", self.wait.no_fit_s),
            ("unattributed", self.wait.unattributed_s),
        ] {
            wt.row(vec![
                label.to_string(),
                format!("{v:.0}"),
                format!("{:.1}%", 100.0 * v / total),
            ]);
        }
        format!(
            "{}\npasses {}  started-in-passes {}  waited-jobs {}\n{}",
            mix.render(),
            self.passes,
            self.started_in_passes,
            self.wait.waited_jobs,
            wt.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sd_trace::RejectReason;

    fn ev(seq: u64, t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { seq, t, kind }
    }

    #[test]
    fn mix_and_wait_attribution() {
        let events = vec![
            ev(0, 0, TraceKind::Submitted { job: 1 }),
            ev(1, 0, TraceKind::Submitted { job: 2 }),
            ev(2, 0, TraceKind::Submitted { job: 3 }),
            ev(3, 0, TraceKind::PassBegin { pass: 1, wall_ns: 5 }),
            // Job 1 queues behind a reservation, job 2 is quota-blocked,
            // job 3 is plain rejected.
            ev(4, 0, TraceKind::EasyReserved { job: 1, est: 50 }),
            ev(5, 0, TraceKind::QuotaSkipped { job: 2, tenant: 7 }),
            ev(
                6,
                0,
                TraceKind::BackfillRejected { job: 3, reason: RejectReason::NoFitNow },
            ),
            ev(7, 0, TraceKind::PassEnd { pass: 1, wall_ns: 9, started: 0 }),
            ev(8, 10, TraceKind::Started { job: 1, malleable: false, nodes: 4, wait: 10 }),
            ev(9, 20, TraceKind::Started { job: 2, malleable: false, nodes: 2, wait: 20 }),
            ev(10, 30, TraceKind::Started { job: 3, malleable: true, nodes: 1, wait: 30 }),
            // Job 4 started instantly: contributes no wait.
            ev(11, 30, TraceKind::Submitted { job: 4 }),
            ev(12, 30, TraceKind::Started { job: 4, malleable: false, nodes: 1, wait: 0 }),
        ];
        let s = summarize(&events);
        assert_eq!(s.events, 13);
        assert_eq!(s.passes, 1);
        assert_eq!(s.wait.waited_jobs, 3);
        assert_eq!(s.wait.reserved_s, 10.0);
        assert_eq!(s.wait.quota_s, 20.0);
        assert_eq!(s.wait.no_fit_s, 30.0);
        assert_eq!(s.wait.unattributed_s, 0.0);
        assert_eq!(s.wait.total_s(), 60.0);
        let mix: std::collections::HashMap<_, _> = s.decision_mix.iter().copied().collect();
        assert_eq!(mix["submitted"], 4);
        assert_eq!(mix["started"], 4);
        assert_eq!(mix["quota_skipped"], 1);
        assert_eq!(mix["shrunk"], 0);
        let text = s.render();
        assert!(text.contains("quota"));
        assert!(text.contains("queued_behind_reservation"));
    }

    #[test]
    fn unattributed_wait_when_signals_lost() {
        // A started event whose pre-start history was overwritten.
        let events =
            vec![ev(0, 9, TraceKind::Started { job: 8, malleable: false, nodes: 1, wait: 42 })];
        let s = summarize(&events);
        assert_eq!(s.wait.unattributed_s, 42.0);
        assert_eq!(s.wait.waited_jobs, 1);
    }
}
