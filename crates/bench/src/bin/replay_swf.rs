//! Replay a genuine Parallel Workloads Archive trace (static vs SD-Policy).
//!
//! This is the path for running the paper's *actual* Workloads 3/4 when the
//! archive files are available (DESIGN.md §4):
//!
//! ```sh
//! cargo run --release -p sd-bench --bin replay_swf -- --swf CEA-Curie-2011-2.1-cln.swf
//! ```

use drom::SharingFactor;
use sd_bench::CliArgs;
use sd_policy::SdPolicy;
use sched_metrics::{Summary, Table};
use slurm_sim::replay::{infer_cluster, replay_state};
use slurm_sim::{Controller, IdealModel, SlurmConfig, StaticBackfill};

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("replay_swf", &["--swf"]);
    let Some(path) = args.swf.as_deref() else {
        eprintln!("usage: replay_swf --swf <trace.swf> [--seed N]");
        std::process::exit(2);
    };
    let (trace, skipped) =
        swf::parse_file(std::path::Path::new(path)).expect("readable SWF file");
    let spec = infer_cluster(&trace);
    println!(
        "{path}: {} records ({skipped} malformed skipped), machine {} = {} nodes × {} cores",
        trace.len(),
        spec.name,
        spec.nodes,
        spec.node.cores()
    );
    let cfg = if trace.len() > 50_000 {
        SlurmConfig::large_scale()
    } else {
        SlurmConfig::default()
    };

    let (state, kept) = replay_state(
        trace.clone(),
        spec.clone(),
        cfg.clone(),
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    println!("{kept} jobs after cleaning; running static backfill…");
    let stat = Controller::new(state, StaticBackfill).run();

    let (state, _) = replay_state(
        trace,
        spec.clone(),
        cfg,
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    println!("running SD-Policy (DynAVGSD)…");
    let sd = Controller::new(state, SdPolicy::default()).run();

    let s0 = Summary::from_result("static", &stat, spec.total_cores());
    let s1 = Summary::from_result("sd", &sd, spec.total_cores());
    let mut t = Table::new(&["metric", "static", "SD-Policy", "norm"]);
    t.row(vec![
        "makespan (s)".into(),
        format!("{}", s0.makespan),
        format!("{}", s1.makespan),
        format!("{:.3}", s1.makespan as f64 / s0.makespan.max(1) as f64),
    ]);
    t.row(vec![
        "avg response (s)".into(),
        format!("{:.0}", s0.mean_response),
        format!("{:.0}", s1.mean_response),
        format!("{:.3}", s1.mean_response / s0.mean_response.max(1e-9)),
    ]);
    t.row(vec![
        "avg slowdown".into(),
        format!("{:.1}", s0.mean_slowdown),
        format!("{:.1}", s1.mean_slowdown),
        format!("{:.3}", s1.mean_slowdown / s0.mean_slowdown.max(1e-9)),
    ]);
    println!("\n{}", t.render());
    println!(
        "malleable starts: {}, mates: {}",
        sd.stats.started_malleable, sd.stats.unique_mates
    );
}
