//! **Table 2** — workload characterisation for the real-run evaluation.
//!
//! Prints the application mix of the generated Workload 5 next to the
//! paper's percentages, plus the behavioural parameters of each application
//! model (our substitution for the real binaries, DESIGN.md §4).

use sched_metrics::Table;
use workload::{AppId, PaperWorkload, APPS};

fn main() {
    let args = sd_bench::CliArgs::from_env();
    args.require_supported("table2", &[]);
    let at = PaperWorkload::generate_apps(args.effective_seed());
    let mix = at.mix();
    let total = at.apps.len() as f64;

    println!("=== Table 2: Workload characterization for real-run evaluation ===\n");
    let mut t = Table::new(&[
        "Application",
        "% workload",
        "paper %",
        "CPU util",
        "Mem util",
        "serial frac",
        "speedup@48",
    ]);
    for app in &APPS {
        let count = mix
            .iter()
            .find(|(id, _)| *id == app.id)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        t.row(vec![
            app.name.to_string(),
            format!("{:.1}%", count as f64 / total * 100.0),
            format!("{:.1}%", app.share * 100.0),
            format!("{:.2}", app.cpu_util),
            format!("{:.2}", app.mem_util),
            format!("{:.3}", app.serial_fraction),
            format!("{:.1}", app.speedup(48)),
        ]);
    }
    println!("{}", t.render());

    // Size/time qualitative profile (the paper's ReqNodes / ReqTime cols).
    let mut nodes_by_app: std::collections::HashMap<AppId, (u64, u64, usize)> = Default::default();
    for (i, &a) in at.apps.iter().enumerate() {
        let j = &at.trace.jobs[i];
        let e = nodes_by_app.entry(a).or_insert((0, 0, 0));
        e.0 += j.procs().unwrap_or(0) / 48;
        e.1 += j.runtime().unwrap_or(0);
        e.2 += 1;
    }
    let mut t2 = Table::new(&["Application", "mean nodes", "mean runtime (s)", "jobs"]);
    for app in &APPS {
        if let Some(&(n, rt, c)) = nodes_by_app.get(&app.id) {
            let c = c.max(1);
            t2.row(vec![
                app.name.to_string(),
                format!("{:.1}", n as f64 / c as f64),
                format!("{:.0}", rt as f64 / c as f64),
                format!("{c}"),
            ]);
        }
    }
    println!("{}", t2.render());
}
