//! **Figures 1–3** — makespan, average response time and average slowdown
//! for Workloads 1–4 over the MAX_SLOWDOWN sweep
//! (MAXSD 5 / 10 / 50 / ∞ / DynAVGSD), normalised to static backfill.
//!
//! Paper's headline: best-case slowdown reductions of 49.5 % (W1), 31 %
//! (W2), 25.7 % (W3) and 70.4 % (W4); makespan roughly constant; response
//! time down by up to 50 % on W4.

use sd_bench::{run_config, sweep_with, CliArgs, ModelKind, PolicyKind, RunConfig};
use sd_policy::MaxSlowdown;
use sched_metrics::{normalized, Summary, Table};
use workload::PaperWorkload;

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("fig123_maxsd_sweep", &["--threads"]);
    // "using SharingFactor of 0.5 and the ideal runtime model" (§4.1).
    let cutoffs = MaxSlowdown::paper_sweep();

    let mut configs = Vec::new();
    for &w in &PaperWorkload::SIMULATED {
        let scale = args.effective_scale(sd_bench::default_scale(w));
        configs.push(
            RunConfig::new(w, PolicyKind::StaticBackfill)
                .with_scale(scale)
                .with_seed(args.effective_seed())
                .with_model(ModelKind::Ideal),
        );
        for &c in &cutoffs {
            configs.push(
                RunConfig::new(w, PolicyKind::Sd(c))
                    .with_scale(scale)
                    .with_seed(args.effective_seed())
                    .with_model(ModelKind::Ideal),
            );
        }
    }
    eprintln!("running {} simulations…", configs.len());
    let results = sweep_with(&configs, args.threads, run_config);

    let per_workload = 1 + cutoffs.len();
    let metric_tables = [
        ("Figure 1: Makespan (normalized to static backfill)", 0usize),
        ("Figure 2: Avg response time (normalized)", 1),
        ("Figure 3: Avg slowdown (normalized)", 2),
    ];
    for (title, metric) in metric_tables {
        println!("\n=== {title} ===\n");
        let mut t = Table::new(&[
            "workload", "MAXSD 5", "MAXSD 10", "MAXSD 50", "MAXSD inf", "DynAVGSD",
        ]);
        for (wi, &w) in PaperWorkload::SIMULATED.iter().enumerate() {
            let base_idx = wi * per_workload;
            let cores = w
                .cluster(args.effective_scale(sd_bench::default_scale(w)))
                .total_cores();
            let base = Summary::from_result("static", &results[base_idx], cores);
            let pick = |s: &Summary| match metric {
                0 => s.makespan as f64,
                1 => s.mean_response,
                _ => s.mean_slowdown,
            };
            let mut row = vec![w.short().to_string()];
            for ci in 0..cutoffs.len() {
                let s = Summary::from_result("sd", &results[base_idx + 1 + ci], cores);
                row.push(format!("{:.3}", normalized(pick(&s), pick(&base))));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }

    // Companion absolute table + malleability counters.
    println!("\n=== Absolute values (for EXPERIMENTS.md) ===\n");
    let mut t = Table::new(&[
        "workload", "policy", "makespan", "resp(s)", "slowdown", "malleable", "mates",
    ]);
    for (wi, &w) in PaperWorkload::SIMULATED.iter().enumerate() {
        let cores = w
            .cluster(args.effective_scale(sd_bench::default_scale(w)))
            .total_cores();
        for ci in 0..per_workload {
            let res = &results[wi * per_workload + ci];
            let label = if ci == 0 {
                "static".to_string()
            } else {
                cutoffs[ci - 1].label()
            };
            let s = Summary::from_result(&label, res, cores);
            t.row(vec![
                w.short().to_string(),
                label,
                format!("{}", s.makespan),
                format!("{:.0}", s.mean_response),
                format!("{:.1}", s.mean_slowdown),
                format!("{}", s.malleable_started),
                format!("{}", s.unique_mates),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "paper best-case slowdown reductions: W1 49.5%, W2 31%, W3 25.7%, W4 70.4%"
    );
}
