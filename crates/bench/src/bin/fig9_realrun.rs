//! **Figure 9** — the "real run": SD-Policy improvement over static backfill
//! on Workload 5 (49 MN4 nodes, 2000 jobs of real applications).
//!
//! Our substitution for the physical MareNostrum4 run drives the simulator
//! with the application-behaviour rate model and the utilisation-weighted
//! power model (DESIGN.md §4). Paper results: makespan −7 %, response and
//! slowdown ≈ −16 %, energy −6 %; 449 of 539 malleable-scheduled jobs had
//! better resource-proportional runtime than their static execution.

use sd_bench::{run_config, sweep_with, CliArgs, ModelKind, PolicyKind, RunConfig};
use sd_policy::MaxSlowdown;
use sched_metrics::{improvement_pct, Summary, Table};
use workload::PaperWorkload;

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("fig9_realrun", &["--threads"]);
    let w = PaperWorkload::W5RealRun;
    let configs = vec![
        RunConfig::new(w, PolicyKind::StaticBackfill)
            .with_seed(args.effective_seed())
            .with_model(ModelKind::AppAware),
        RunConfig::new(w, PolicyKind::Sd(MaxSlowdown::DynAvg))
            .with_seed(args.effective_seed())
            .with_model(ModelKind::AppAware),
    ];
    eprintln!("running static + SD on the 49-node MN4 subset (app-aware model)…");
    let results = sweep_with(&configs, args.threads, run_config);
    let cores = w.cluster(1.0).total_cores();
    let stat = Summary::from_result("static", &results[0], cores);
    let sd = Summary::from_result("sd", &results[1], cores);

    println!("=== Figure 9: SD-Policy improvement over static backfill (Workload 5) ===\n");
    let mut t = Table::new(&["metric", "static", "SD-Policy", "improvement", "paper"]);
    t.row(vec![
        "makespan (s)".into(),
        format!("{}", stat.makespan),
        format!("{}", sd.makespan),
        format!("{:+.1}%", improvement_pct(sd.makespan as f64, stat.makespan as f64)),
        "+7%".into(),
    ]);
    t.row(vec![
        "avg response (s)".into(),
        format!("{:.0}", stat.mean_response),
        format!("{:.0}", sd.mean_response),
        format!("{:+.1}%", improvement_pct(sd.mean_response, stat.mean_response)),
        "~+16%".into(),
    ]);
    t.row(vec![
        "avg slowdown".into(),
        format!("{:.1}", stat.mean_slowdown),
        format!("{:.1}", sd.mean_slowdown),
        format!("{:+.1}%", improvement_pct(sd.mean_slowdown, stat.mean_slowdown)),
        "~+16%".into(),
    ]);
    t.row(vec![
        "energy (kWh)".into(),
        format!("{:.0}", stat.energy_kwh),
        format!("{:.0}", sd.energy_kwh),
        format!("{:+.1}%", improvement_pct(sd.energy_kwh, stat.energy_kwh)),
        "+6%".into(),
    ]);
    println!("{}", t.render());

    // "449 jobs out of 539 scheduled with malleability have a better runtime
    // compared to the static execution, if we proportionate it to the number
    // of used resources."
    let sd_res = &results[1];
    let mut better = 0usize;
    let mut total = 0usize;
    for o in &sd_res.outcomes {
        if !o.malleable_backfilled {
            continue;
        }
        total += 1;
        // Resource-proportional comparison: actual runtime vs static runtime
        // scaled by the (inverse) share of resources it effectively had.
        // With a 0.5 sharing factor the proportional expectation is 2× the
        // static runtime; beating it means the app model's scalability +
        // contention benefits materialised.
        let proportional = o.static_runtime as f64 / 0.5;
        if (o.runtime() as f64) < proportional {
            better += 1;
        }
    }
    println!(
        "malleable-scheduled jobs with better-than-proportional runtime: {better}/{total} \
         (paper: 449/539)"
    );
    println!(
        "malleable starts: {}, mates: {}, utilization: static {:.1}% vs SD {:.1}%",
        sd.malleable_started,
        sd.unique_mates,
        stat.utilization * 100.0,
        sd.utilization * 100.0
    );
}
