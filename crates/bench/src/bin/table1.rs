//! **Table 1** — description of the five workloads.
//!
//! Regenerates the paper's workload-inventory table: job count, system size,
//! maximum job size, and the static-backfill average response time, average
//! slowdown and makespan. Paper values are printed alongside for comparison
//! (absolute numbers depend on the synthetic-trace calibration; the shape —
//! orders of magnitude and ordering across workloads — is the target).

use sd_bench::{run_config, CliArgs, PolicyKind, RunConfig};
use sched_metrics::Summary;
use workload::PaperWorkload;

struct PaperRow {
    resp: f64,
    slowdown: f64,
    makespan: u64,
}

fn paper_row(w: PaperWorkload) -> PaperRow {
    match w {
        PaperWorkload::W1Cirne => PaperRow {
            resp: 122_152.0,
            slowdown: 3_339.5,
            makespan: 899_888,
        },
        PaperWorkload::W2CirneIdeal => PaperRow {
            resp: 126_486.0,
            slowdown: 3_501.0,
            makespan: 896_024,
        },
        PaperWorkload::W3Ricc => PaperRow {
            resp: 43_537.0,
            slowdown: 1_341.0,
            makespan: 407_043,
        },
        PaperWorkload::W4Curie => PaperRow {
            resp: 29_858.5,
            slowdown: 3_666.5,
            makespan: 21_615_111,
        },
        PaperWorkload::W5RealRun => PaperRow {
            resp: 56_482.0,
            slowdown: 4_783.1,
            makespan: 159_313,
        },
    }
}

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("table1", &[]);
    println!("=== Table 1: Description of workloads (static backfill) ===\n");
    let mut table = sched_metrics::Table::new(&[
        "ID",
        "Log/model",
        "#jobs",
        "system(n/c)",
        "maxjob(n/c)",
        "resp(s)",
        "paper",
        "slowdown",
        "paper",
        "makespan(s)",
        "paper",
    ]);
    for (i, w) in PaperWorkload::ALL.iter().enumerate() {
        let scale = args.effective_scale(sd_bench::default_scale(*w));
        let cfg = RunConfig::new(*w, PolicyKind::StaticBackfill)
            .with_scale(scale)
            .with_seed(args.effective_seed())
            .with_model(if *w == PaperWorkload::W5RealRun {
                sd_bench::ModelKind::AppAware
            } else {
                sd_bench::ModelKind::Ideal
            });
        let res = run_config(&cfg);
        let cluster = w.cluster(scale);
        let s = Summary::from_result(w.label(), &res, cluster.total_cores());
        let max_job_nodes = res.outcomes.iter().map(|o| o.nodes).max().unwrap_or(0);
        let p = paper_row(*w);
        let model_name = match w {
            PaperWorkload::W1Cirne => "Cirne",
            PaperWorkload::W2CirneIdeal => "Cirne_ideal",
            PaperWorkload::W3Ricc => "RICC-sept",
            PaperWorkload::W4Curie => "CEA-Curie",
            PaperWorkload::W5RealRun => "Cirne_real_run",
        };
        table.row(vec![
            format!("{}", i + 1),
            model_name.to_string(),
            format!("{}", s.jobs),
            format!("{}/{}", cluster.nodes, cluster.total_cores()),
            format!(
                "{}/{}",
                max_job_nodes,
                max_job_nodes as u64 * cluster.node.cores() as u64
            ),
            format!("{:.0}", s.mean_response),
            format!("{:.0}", p.resp),
            format!("{:.1}", s.mean_slowdown),
            format!("{:.1}", p.slowdown),
            format!("{}", s.makespan),
            format!("{}", p.makespan),
        ]);
        eprintln!(
            "[{}] scale {:.3}: utilization {:.1}%, sched passes {}",
            w.short(),
            scale,
            s.utilization * 100.0,
            res.stats.sched_passes
        );
    }
    println!("{}", table.render());
    if !args.full {
        println!(
            "(scaled runs — paper columns refer to the full-scale systems; \
             rerun with --full for paper-scale sizes)"
        );
    }
}
