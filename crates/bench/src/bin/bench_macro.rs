//! Macro-benchmark driver: times end-to-end W3/W4 scheduler runs on both
//! hot paths (legacy rebuild-everything vs incremental cached/indexed/gated)
//! and writes the perf trajectory to `BENCH_<rev>.json`.
//!
//! ```sh
//! cargo run --release --bin bench_macro                      # CI panel
//! cargo run --release --bin bench_macro -- --full            # + paper scale
//! cargo run --release --bin bench_macro -- --check BENCH_baseline.json
//! ```
//!
//! `--check` exits 1 if any entry's incremental wall time regresses more
//! than the tolerance (default 25 %) over the committed baseline; the
//! machine-independent `--min-speedup` gate checks the legacy/incremental
//! ratio instead.

use sd_bench::macrobench::{
    ab_panel, check_regressions, cross_backend_mismatches, measure, panel, parse_check_map,
    render_json,
};
use sd_bench::{CliArgs, CliError, USAGE};
use sched_metrics::Table;

const EXTRA_USAGE: &str = "bench_macro — timed macro-benchmark of the scheduler hot path

  --iters <n>          repetitions per entry and mode (default 3)
  --rev <label>        revision label for the output file (default: git HEAD)
  --check <file>       fail (exit 1) on >tolerance wall regression vs file
  --tolerance <pct>    regression tolerance percentage (default 25)
  --min-speedup <x>    fail if any sd-policy entry speeds up less than x
  --ab-backends        run every entry under both availability backends
                       (`name @profile` / `name @slottree`) and fail if any
                       pair's schedules disagree
";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n\n{EXTRA_USAGE}\n{USAGE}");
    std::process::exit(2);
}

struct BenchCli {
    iters: usize,
    rev: Option<String>,
    check: Option<String>,
    tolerance: f64,
    min_speedup: Option<f64>,
    ab_backends: bool,
    common: CliArgs,
}

fn parse_cli() -> BenchCli {
    let mut iters = 3usize;
    let mut rev = None;
    let mut check = None;
    let mut tolerance = 25.0;
    let mut min_speedup = None;
    let mut ab_backends = false;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| fail(&format!("{flag} needs a value")));
        match a.as_str() {
            "--iters" => {
                iters = value("--iters")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --iters"));
                if iters == 0 {
                    fail("--iters must be at least 1");
                }
            }
            "--rev" => rev = Some(value("--rev")),
            "--check" => check = Some(value("--check")),
            "--tolerance" => {
                tolerance = value("--tolerance")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --tolerance"));
            }
            "--min-speedup" => {
                min_speedup = Some(
                    value("--min-speedup")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --min-speedup")),
                );
            }
            "--ab-backends" => ab_backends = true,
            _ => rest.push(a),
        }
    }
    let common = match CliArgs::parse(rest) {
        Ok(c) => c,
        Err(CliError::Help) => {
            println!("{EXTRA_USAGE}\n{USAGE}");
            std::process::exit(0);
        }
        Err(CliError::Bad(msg)) => fail(&msg),
    };
    common.require_supported("bench_macro", &["--out", "--backend"]);
    if ab_backends && common.backend.is_some() {
        fail("--ab-backends runs both backends; it conflicts with --backend");
    }
    BenchCli {
        iters,
        rev,
        check,
        tolerance,
        min_speedup,
        ab_backends,
        common,
    }
}

fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "dev".to_string())
}

fn main() {
    let cli = parse_cli();
    let rev = cli.rev.clone().unwrap_or_else(git_short_rev);
    let entries = if cli.ab_backends {
        ab_panel(cli.common.full)
    } else {
        let mut entries = panel(cli.common.full);
        // `--backend` swaps the representation but keeps the entry names,
        // so `--check` baselines stay comparable across backends.
        if let Some(backend) = cli.common.backend {
            for e in &mut entries {
                e.backend = backend;
            }
        }
        entries
    };

    eprintln!(
        "bench_macro: {} entries × {} iters × 2 modes (rev {rev})",
        entries.len(),
        cli.iters
    );
    let mut results = Vec::with_capacity(entries.len());
    for e in &entries {
        eprint!("  {} …", e.name);
        let r = measure(e, cli.iters);
        eprintln!(
            " legacy {:.3}s → incremental {:.3}s ({:.2}×{})",
            r.legacy.sim_s_min,
            r.incremental.sim_s_min,
            r.speedup,
            if r.results_match { "" } else { ", RESULTS DIVERGED" },
        );
        results.push(r);
    }

    let mut t = Table::new(&[
        "entry", "jobs", "events", "passes", "skipped", "peak-prof", "legacy(s)",
        "incr(s)", "speedup", "match",
    ]);
    for r in &results {
        t.row(vec![
            r.entry.name.clone(),
            format!("{}", r.jobs),
            format!("{}", r.incremental.events),
            format!("{}", r.incremental.sched_passes),
            format!("{}", r.incremental.passes_skipped),
            format!("{}", r.incremental.peak_profile_len),
            format!("{:.3}", r.legacy.sim_s_min),
            format!("{:.3}", r.incremental.sim_s_min),
            format!("{:.2}", r.speedup),
            format!("{}", r.results_match),
        ]);
    }
    println!("{}", t.render());

    let payload = render_json(&rev, cli.iters, &results);
    let out = cli
        .common
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{rev}.json"));
    std::fs::write(&out, &payload).unwrap_or_else(|e| fail(&format!("writing {out}: {e}")));
    eprintln!("wrote {out}");

    let mut failed = false;
    if results.iter().any(|r| !r.results_match) {
        eprintln!("FAIL: legacy and incremental paths diverged");
        failed = true;
    }
    if cli.ab_backends {
        for line in cross_backend_mismatches(&results) {
            eprintln!("FAIL: {line}");
            failed = true;
        }
    }
    if let Some(min) = cli.min_speedup {
        for r in results.iter().filter(|r| r.entry.name.contains("sd")) {
            if r.speedup < min {
                eprintln!(
                    "FAIL: {} speedup {:.2}× below required {min}×",
                    r.entry.name, r.speedup
                );
                failed = true;
            }
        }
    }
    if let Some(path) = &cli.check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
        let baseline = parse_check_map(&text);
        if baseline.is_empty() {
            fail(&format!("{path} has no check_sim_s section"));
        }
        for line in check_regressions(&results, &baseline, cli.tolerance / 100.0) {
            eprintln!("FAIL: {line}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
