//! Run a declarative scenario (built-in or from a file) as a campaign:
//! expand its sweep cross-product, execute every point over scoped worker
//! threads, print a summary table, and optionally export deterministic
//! JSON/CSV.
//!
//! ```sh
//! cargo run --release --bin run_scenario -- --list
//! cargo run --release --bin run_scenario -- --scenario bursty --scale 0.05
//! cargo run --release --bin run_scenario -- --scenario scenarios/bursty.scn \
//!     --seed 7 --threads 4 --out campaign.json
//! ```
//!
//! Running the same scenario twice with the same `--seed` produces
//! byte-identical output files.

use sched_metrics::{
    campaign_csv, campaign_json, tenant_csv, tenant_summaries, CampaignDeltas, CampaignRow,
    Summary, Table,
};
use sd_bench::{sweep_with, CliArgs, CliError, USAGE};
use sd_scenario::{
    baseline_point, builtin_scenarios, execute, execute_traced, expand, find_builtin, Campaign,
    PolicyKindDecl, RunPoint, Scenario, ScenarioOutcome,
};

const EXTRA_USAGE: &str = "run_scenario — execute a declarative scenario campaign

  --scenario <name|path>  built-in scenario name or a scenario file
  --campaign <path>       run every scenario named by a .campaign file
  --list                  list the built-in scenarios and exit
  --format <json|csv>     output format for --out (default: by extension)
  --write-builtin <dir>   write every built-in scenario as <dir>/<name>.scn
  --timing                print a wall-time/scheduler-work table plus the
                          per-function hot-path attribution (earliest_start,
                          backfill trials, quota checks, fair-share sorts) to
                          stderr (per-run wall is noisy unless --threads 1)
  --trace <path>          record every scheduler decision of the first run
                          point and write it as Chrome trace-event JSON
                          (open in Perfetto / chrome://tracing); prints a
                          decision-mix + wait-decomposition summary to stderr
  --flame <path>          profile the campaign and write a collapsed-stack
                          (flamegraph.pl / inferno / speedscope) file
                          attributing scheduler wall time per hot function
  --log-level <lvl>       stderr log verbosity: error|warn|info|debug|trace
                          (default info)
  --log-json <path>       mirror every emitted log record to a JSON-lines file
";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n\n{EXTRA_USAGE}\n{USAGE}");
    std::process::exit(2);
}

struct ScenarioCli {
    scenario: Option<String>,
    campaign: Option<String>,
    list: bool,
    format: Option<String>,
    write_builtin: Option<String>,
    timing: bool,
    trace: Option<String>,
    flame: Option<String>,
    common: CliArgs,
}

fn parse_cli() -> ScenarioCli {
    let mut scenario = None;
    let mut campaign = None;
    let mut list = false;
    let mut format = None;
    let mut write_builtin = None;
    let mut timing = false;
    let mut trace = None;
    let mut flame = None;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scenario" => match it.next() {
                Some(v) => scenario = Some(v),
                None => fail("--scenario needs a value"),
            },
            "--campaign" => match it.next() {
                Some(v) => campaign = Some(v),
                None => fail("--campaign needs a path"),
            },
            "--list" => list = true,
            "--timing" => timing = true,
            "--trace" => match it.next() {
                Some(v) => trace = Some(v),
                None => fail("--trace needs an output path"),
            },
            "--flame" => match it.next() {
                Some(v) => flame = Some(v),
                None => fail("--flame needs an output path"),
            },
            "--log-level" => match it.next().as_deref().map(sd_obs::Level::parse) {
                Some(Some(l)) => {
                    sd_obs::set_stderr_level(l);
                    sd_obs::set_ring_level(l);
                }
                Some(None) => fail("--log-level must be error|warn|info|debug|trace"),
                None => fail("--log-level needs a value"),
            },
            "--log-json" => match it.next() {
                Some(v) => {
                    let p = std::path::PathBuf::from(&v);
                    sd_obs::attach_json_sink(&p)
                        .unwrap_or_else(|e| fail(&format!("--log-json {v}: {e}")));
                }
                None => fail("--log-json needs a path"),
            },
            "--format" => match it.next().as_deref() {
                Some("json") => format = Some("json".to_string()),
                Some("csv") => format = Some("csv".to_string()),
                Some(v) => fail(&format!("--format must be json or csv, got {v}")),
                None => fail("--format needs a value"),
            },
            "--write-builtin" => match it.next() {
                Some(v) => write_builtin = Some(v),
                None => fail("--write-builtin needs a directory"),
            },
            _ => rest.push(a),
        }
    }
    let common = match CliArgs::parse(rest) {
        Ok(c) => c,
        Err(CliError::Help) => {
            println!("{EXTRA_USAGE}\n{USAGE}");
            std::process::exit(0);
        }
        Err(CliError::Bad(msg)) => fail(&msg),
    };
    common.require_supported("run_scenario", &["--threads", "--out", "--backend"]);
    if format.is_some() && common.out.is_none() {
        fail("--format requires --out");
    }
    if scenario.is_some() && campaign.is_some() {
        fail("--scenario and --campaign are mutually exclusive");
    }
    ScenarioCli {
        scenario,
        campaign,
        list,
        format,
        write_builtin,
        timing,
        trace,
        flame,
        common,
    }
}

fn list_builtins() {
    let mut t = Table::new(&["name", "runs", "description"]);
    for s in builtin_scenarios() {
        t.row(vec![
            s.name.clone(),
            format!("{}", s.sweep.run_count()),
            s.description.clone(),
        ]);
    }
    println!("{}", t.render());
}

fn write_builtins(dir: &str) {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir).unwrap_or_else(|e| fail(&format!("creating {dir:?}: {e}")));
    for s in builtin_scenarios() {
        let path = dir.join(format!("{}.scn", s.name));
        std::fs::write(&path, s.render())
            .unwrap_or_else(|e| fail(&format!("writing {path:?}: {e}")));
        println!("wrote {}", path.display());
    }
}

fn resolve_scenario(arg: &str) -> Scenario {
    if let Some(s) = find_builtin(arg) {
        return s;
    }
    let path = std::path::Path::new(arg);
    if !path.exists() {
        fail(&format!(
            "`{arg}` is neither a built-in scenario (see --list) nor a file"
        ));
    }
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("reading {arg}: {e}")));
    Scenario::parse(&text).unwrap_or_else(|e| fail(&format!("{arg}: {e}")))
}

fn main() {
    let cli = parse_cli();
    if cli.list {
        list_builtins();
        return;
    }
    if let Some(dir) = &cli.write_builtin {
        write_builtins(dir);
        return;
    }
    let mut scenarios: Vec<Scenario> = match (&cli.scenario, &cli.campaign) {
        (Some(name), None) => vec![resolve_scenario(name)],
        (None, Some(path)) => {
            let p = std::path::Path::new(path);
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
            let campaign =
                Campaign::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            let base = p.parent().unwrap_or_else(|| std::path::Path::new("."));
            let members = campaign
                .resolve(base)
                .unwrap_or_else(|e| fail(&format!("{path}: {e}")));
            eprintln!(
                "campaign `{}`: {} scenario{}",
                campaign.name,
                members.len(),
                if members.len() == 1 { "" } else { "s" }
            );
            members
        }
        _ => fail("--scenario <name|path> or --campaign <path> is required (or --list)"),
    };

    // CLI overrides pin the base values; a [sweep] over the same axis
    // still wins (expansion only reads the base when the axis is unswept).
    for scenario in &mut scenarios {
        if let Some(seed) = cli.common.seed {
            scenario.seed = seed;
        }
        if cli.common.full {
            scenario.scale = Some(1.0);
        } else if let Some(scale) = cli.common.scale {
            scenario.scale = Some(scale);
        }
        if let Some(backend) = cli.common.backend {
            scenario.slurm.avail_backend = Some(match backend {
                slurm_sim::AvailBackendKind::Profile => sd_scenario::AvailBackendDecl::Profile,
                slurm_sim::AvailBackendKind::SlotTree => sd_scenario::AvailBackendDecl::SlotTree,
            });
        }
    }

    let points: Vec<RunPoint> = scenarios.iter().flat_map(expand).collect();

    // Every SD point gets a static-backfill twin so each campaign row can
    // carry Δ-vs-static columns; a `maxsd` sweep's variants share one
    // baseline (the cut-off is canonicalised away). Points that *are*
    // static runs serve as their own baseline (`None`).
    let mut baselines: Vec<RunPoint> = Vec::new();
    let mut baseline_idx: Vec<Option<usize>> = Vec::with_capacity(points.len());
    for p in &points {
        if p.scenario.policy.kind == PolicyKindDecl::Static {
            baseline_idx.push(None);
            continue;
        }
        let b = baseline_point(p);
        let idx = baselines
            .iter()
            .position(|x| *x == b)
            .unwrap_or_else(|| {
                baselines.push(b);
                baselines.len() - 1
            });
        baseline_idx.push(Some(idx));
    }

    for scenario in &scenarios {
        eprintln!(
            "scenario `{}`: {} run{} (scale {}, base seed {})",
            scenario.name,
            scenario.sweep.run_count(),
            if scenario.sweep.run_count() == 1 { "" } else { "s" },
            scenario.effective_scale(),
            scenario.seed,
        );
    }
    eprintln!(
        "{} run{} + {} shared baseline{}",
        points.len(),
        if points.len() == 1 { "" } else { "s" },
        baselines.len(),
        if baselines.len() == 1 { "" } else { "s" },
    );

    let mut work: Vec<RunPoint> = points.clone();
    work.extend(baselines.iter().cloned());
    if cli.timing || cli.flame.is_some() {
        // Hot-path probes are process-global; with --threads > 1 the
        // per-function totals aggregate across concurrent runs.
        slurm_sim::timing::reset();
        slurm_sim::timing::enable();
    }
    // `--trace` arms decision tracing for the first run point only (a
    // campaign-wide ring would interleave concurrent runs); it executes
    // before the sweep so the stream is single-run and deterministic.
    let ring = cli
        .trace
        .as_ref()
        .map(|_| std::sync::Arc::new(slurm_sim::TraceRing::new(1 << 20)));
    let mut results = Vec::with_capacity(work.len());
    let swept: &[RunPoint] = match &ring {
        Some(ring) => {
            let t0 = std::time::Instant::now();
            results.push((execute_traced(&work[0], ring.clone()), t0.elapsed().as_secs_f64()));
            &work[1..]
        }
        None => &work,
    };
    results.extend(sweep_with(swept, cli.common.threads, |p| {
        let t0 = std::time::Instant::now();
        (execute(p), t0.elapsed().as_secs_f64())
    }));
    let mut outcomes: Vec<ScenarioOutcome> = Vec::with_capacity(results.len());
    let mut walls: Vec<f64> = Vec::with_capacity(results.len());
    for (r, wall) in results {
        match r {
            Ok(o) => {
                outcomes.push(o);
                walls.push(wall);
            }
            Err(e) => fail(&format!("run failed: {e}")),
        }
    }
    if let (Some(path), Some(ring)) = (&cli.trace, &ring) {
        let events = ring.snapshot();
        if ring.overwritten() > 0 {
            eprintln!(
                "warning: trace ring overflowed, oldest {} events dropped",
                ring.overwritten()
            );
        }
        std::fs::write(path, slurm_sim::chrome_trace(&events))
            .unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
        eprintln!(
            "wrote {path} ({} events, Chrome trace-event JSON — open in Perfetto)",
            events.len()
        );
        eprint!("{}", sched_metrics::summarize(&events).render());
    }
    if cli.timing {
        let mut tt = Table::new(&[
            "run", "policy", "wall(s)", "events", "passes", "skipped", "peak-prof",
        ]);
        for (i, o) in outcomes.iter().enumerate() {
            let s = &o.result.stats;
            tt.row(vec![
                if i < points.len() {
                    if o.variant.is_empty() {
                        o.scenario.clone()
                    } else {
                        o.variant.clone()
                    }
                } else {
                    format!("baseline {}", i - points.len())
                },
                o.policy_label.clone(),
                format!("{:.3}", walls[i]),
                format!("{}", s.events_dispatched),
                format!("{}", s.sched_passes),
                format!("{}", s.passes_skipped),
                format!("{}", s.peak_profile_len),
            ]);
        }
        eprintln!("{}", tt.render());
        // Dormant probes (count 0) are noise, not data: skip them. The
        // %-of-wall column attributes each probe against the campaign's
        // total wall time (summed across runs, like the probe totals).
        let total_wall: f64 = walls.iter().sum();
        let fns: Vec<_> = slurm_sim::timing::report()
            .into_iter()
            .filter(|f| f.count > 0)
            .collect();
        if fns.is_empty() {
            eprintln!("(no hot-path probes fired)");
        } else {
            let mut ft = Table::new(&["function", "calls", "total(s)", "mean(us)", "%-of-wall"]);
            for f in &fns {
                ft.row(vec![
                    f.name.to_string(),
                    format!("{}", f.count),
                    format!("{:.3}", f.total_secs),
                    format!("{:.2}", f.mean_micros()),
                    if total_wall > 0.0 {
                        format!("{:.1}", 100.0 * f.total_secs / total_wall)
                    } else {
                        "-".to_string()
                    },
                ]);
            }
            eprintln!("{}", ft.render());
        }
    }
    if let Some(path) = &cli.flame {
        let samples: Vec<sd_obs::StackSample> = slurm_sim::timing::stack_rows(
            &slurm_sim::timing::report(),
        )
        .into_iter()
        .map(|(frames, micros)| sd_obs::StackSample::new(frames, micros))
        .collect();
        let text = sd_obs::collapsed(&samples);
        if text.is_empty() {
            eprintln!("warning: {path}: no probe fired, flamegraph would be empty");
        }
        std::fs::write(path, text).unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
        eprintln!("wrote {path} (collapsed stacks — flamegraph.pl / inferno / speedscope)");
    }
    let (point_outcomes, baseline_outcomes) = outcomes.split_at(points.len());
    let baseline_summaries: Vec<Summary> = baseline_outcomes
        .iter()
        .map(|o| Summary::from_result(&o.policy_label, &o.result, o.total_cores))
        .collect();

    let rows: Vec<CampaignRow> = point_outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let summary = Summary::from_result(&o.policy_label, &o.result, o.total_cores);
            let deltas = match baseline_idx[i] {
                Some(idx) => Some(CampaignDeltas::against(&summary, &baseline_summaries[idx])),
                // Static points are their own baseline (all-zero deltas).
                None => Some(CampaignDeltas::against(&summary, &summary)),
            };
            CampaignRow {
                scenario: o.scenario.clone(),
                variant: o.variant.clone(),
                seed: o.seed,
                scale: o.scale,
                summary,
                deltas,
                tenants: tenant_summaries(&o.result),
            }
        })
        .collect();

    let mut t = Table::new(&[
        "variant", "policy", "jobs", "makespan", "resp(s)", "slowdown", "util", "malleable",
        "Δslow%", "Δmksp%",
    ]);
    for r in &rows {
        let (dslow, dmksp) = match &r.deltas {
            Some(d) => (
                format!("{:+.1}", d.d_slowdown_pct),
                format!("{:+.2}", d.d_makespan_pct),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        t.row(vec![
            if r.variant.is_empty() {
                "-".to_string()
            } else {
                r.variant.clone()
            },
            r.summary.label.clone(),
            format!("{}", r.summary.jobs),
            format!("{}", r.summary.makespan),
            format!("{:.0}", r.summary.mean_response),
            format!("{:.1}", r.summary.mean_slowdown),
            format!("{:.2}", r.summary.utilization),
            format!("{}", r.summary.malleable_started),
            dslow,
            dmksp,
        ]);
    }
    println!("{}", t.render());

    let tenanted = rows.iter().any(|r| !r.tenants.is_empty());
    if tenanted {
        let mut tt = Table::new(&[
            "variant", "tenant", "jobs", "share", "wait(s)", "slowdown", "node-s",
        ]);
        for r in &rows {
            for ts in &r.tenants {
                tt.row(vec![
                    if r.variant.is_empty() {
                        r.scenario.clone()
                    } else {
                        r.variant.clone()
                    },
                    format!("{}", ts.tenant),
                    format!("{}", ts.jobs),
                    format!("{:.2}", ts.job_share),
                    format!("{:.0}", ts.mean_wait),
                    format!("{:.1}", ts.mean_slowdown),
                    format!("{}", ts.node_seconds),
                ]);
            }
        }
        println!("{}", tt.render());
    }

    // Offline SLO evaluation: a `[slo]` section is judged against the
    // completed run's job outcomes. Wait-quantile objectives evaluate
    // exactly (every wait is known); pass-duration and availability are
    // live-serving objectives (wall clock / refused submissions do not
    // exist offline) and are marked accordingly rather than faked.
    if points.iter().any(|p| !p.scenario.slos.is_empty()) {
        let mut st = Table::new(&["variant", "objective", "good", "total", "budget", "verdict"]);
        for (p, o) in points.iter().zip(point_outcomes) {
            for spec in &p.scenario.slos {
                let variant = if o.variant.is_empty() { o.scenario.clone() } else { o.variant.clone() };
                let (good, total) = match spec.kind {
                    sd_obs::SloKind::WaitQuantile => {
                        let total = o.result.outcomes.len() as u64;
                        let good = o
                            .result
                            .outcomes
                            .iter()
                            .filter(|j| (j.wait() as f64) <= spec.threshold)
                            .count() as u64;
                        (good, total)
                    }
                    _ => {
                        st.row(vec![
                            variant,
                            spec.name.clone(),
                            "-".into(),
                            "-".into(),
                            "-".into(),
                            "live-only".into(),
                        ]);
                        continue;
                    }
                };
                let bad_fraction = if total == 0 { 0.0 } else { 1.0 - good as f64 / total as f64 };
                let allowed = (1.0 - spec.objective).max(f64::EPSILON);
                let budget = 1.0 - bad_fraction / allowed;
                st.row(vec![
                    variant,
                    spec.name.clone(),
                    format!("{good}"),
                    format!("{total}"),
                    format!("{:+.1}%", budget * 100.0),
                    if budget >= 0.0 { "ok".into() } else { "BREACHED".into() },
                ]);
            }
        }
        println!("{}", st.render());
    }

    if let Some(out) = &cli.common.out {
        let as_json = match cli.format.as_deref() {
            Some("json") => true,
            Some("csv") => false,
            _ => !out.ends_with(".csv"),
        };
        let payload = if as_json {
            campaign_json(&rows)
        } else {
            campaign_csv(&rows)
        };
        std::fs::write(out, &payload).unwrap_or_else(|e| fail(&format!("writing {out}: {e}")));
        eprintln!("wrote {out} ({} rows)", rows.len());
        // CSV is fixed-width per row, so the per-tenant breakdown goes to a
        // long-format companion file (JSON embeds it inline).
        if !as_json && tenanted {
            let companion = match out.strip_suffix(".csv") {
                Some(stem) => format!("{stem}.tenants.csv"),
                None => format!("{out}.tenants.csv"),
            };
            let payload = tenant_csv(&rows);
            std::fs::write(&companion, &payload)
                .unwrap_or_else(|e| fail(&format!("writing {companion}: {e}")));
            eprintln!("wrote {companion}");
        }
    }
}
