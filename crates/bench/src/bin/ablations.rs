//! **Ablations** — the design choices the paper discusses but does not plot:
//!
//! * maximum mates `m` ∈ {1, 2, 3} (§3.2.4: "no improvements … increasing m
//!   over two"),
//! * SharingFactor ∈ {0.25, 0.5, 0.75} (§3.3: best isolation at 0.5 on
//!   two-socket nodes),
//! * EASY vs conservative base backfill,
//! * include-free-nodes option (§3.2.4),
//! * malleable fraction ∈ {0, 0.5, 1.0} (mixed static/malleable workloads).
//!
//! All on Workload 3 (mid-sized, conservative-friendly) with DynAVGSD.

use drom::SharingFactor;
use sd_bench::{run_config, CliArgs, ModelKind, PolicyKind, RunConfig};
use sd_policy::{MaxSlowdown, SdPolicyConfig};
use sched_metrics::{Summary, Table};
use slurm_sim::{BackfillMode, SlurmConfig};
use workload::PaperWorkload;

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("ablations", &[]);
    let w = PaperWorkload::W3Ricc;
    let scale = args.effective_scale(sd_bench::default_scale(w));
    let cores = w.cluster(scale).total_cores();

    let base = || {
        RunConfig::new(w, PolicyKind::Sd(MaxSlowdown::DynAvg))
            .with_scale(scale)
            .with_seed(args.effective_seed())
            .with_model(ModelKind::Ideal)
    };
    let run = |label: String, cfg: RunConfig| -> Vec<String> {
        let res = run_config(&cfg);
        let s = Summary::from_result(&label, &res, cores);
        vec![
            label,
            format!("{}", s.makespan),
            format!("{:.0}", s.mean_response),
            format!("{:.2}", s.mean_slowdown),
            format!("{}", s.malleable_started),
        ]
    };

    let mut t = Table::new(&["configuration", "makespan", "resp(s)", "slowdown", "malleable"]);

    // Baseline static for reference.
    t.row(run(
        "static backfill".into(),
        RunConfig::new(w, PolicyKind::StaticBackfill)
            .with_scale(scale)
            .with_seed(args.effective_seed()),
    ));

    // m sweep.
    for m in [1usize, 2, 3] {
        let mut cfg = base();
        cfg.sd_cfg = Some(SdPolicyConfig {
            max_mates: m,
            ..SdPolicyConfig::default()
        });
        t.row(run(format!("SD m={m}"), cfg));
    }

    // SharingFactor sweep.
    for sf in [0.25, 0.5, 0.75] {
        let mut cfg = base();
        cfg.sharing = SharingFactor::new(sf);
        t.row(run(format!("SD sharing={sf}"), cfg));
    }

    // Backfill base.
    for (name, mode) in [("conservative", BackfillMode::Conservative), ("EASY", BackfillMode::Easy)] {
        let mut cfg = base();
        cfg.slurm = Some(SlurmConfig {
            backfill_mode: mode,
            ..SlurmConfig::default()
        });
        t.row(run(format!("SD base={name}"), cfg));
    }

    // Free-nodes option.
    {
        let mut cfg = base();
        cfg.sd_cfg = Some(SdPolicyConfig {
            include_free_nodes: true,
            ..SdPolicyConfig::default()
        });
        t.row(run("SD +free-nodes".into(), cfg));
    }

    // Malleable fraction (mixed workloads).
    for frac in [0.0, 0.5, 1.0] {
        let mut cfg = base();
        cfg.slurm = Some(SlurmConfig {
            malleable_fraction: frac,
            ..SlurmConfig::default()
        });
        t.row(run(format!("SD malleable={:.0}%", frac * 100.0), cfg));
    }

    println!("=== Ablations (Workload 3, SD DynAVGSD unless noted) ===\n");
    println!("{}", t.render());
    println!("paper expectations: m>2 no further gain; sharing 0.5 best on 2-socket nodes;");
    println!("fewer malleable jobs → smaller gains, never worse than static.");
}
