//! **Figures 4–6** — per-category ratio heatmaps on Workload 4.
//!
//! Static backfill vs SD-Policy MAXSD 10; cells are (requested-nodes ×
//! runtime-class) job categories; values are `static / SD` ratios for
//! slowdown (Fig. 4), runtime (Fig. 5) and wait time (Fig. 6).
//!
//! Paper findings to compare against: small/short jobs improve most (up to
//! 569 % in slowdown); runtimes of malleable jobs increase (ratio < 1 in
//! Fig. 5) while wait times improve broadly (Fig. 6); a single category
//! (512–1024 nodes, 12 h–1 d) loses ~15 % slowdown.

use sd_bench::{run_config, sweep_with, CliArgs, ModelKind, PolicyKind, RunConfig};
use sd_policy::MaxSlowdown;
use sched_metrics::heatmap::{HeatMetric, Heatmap, HeatmapSpec, RatioHeatmap};
use workload::PaperWorkload;

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("fig456_heatmaps", &["--threads"]);
    let w = PaperWorkload::W4Curie;
    let scale = args.effective_scale(sd_bench::default_scale(w));
    let configs = vec![
        RunConfig::new(w, PolicyKind::StaticBackfill)
            .with_scale(scale)
            .with_seed(args.effective_seed())
            .with_model(ModelKind::Ideal),
        RunConfig::new(w, PolicyKind::Sd(MaxSlowdown::Static(10.0)))
            .with_scale(scale)
            .with_seed(args.effective_seed())
            .with_model(ModelKind::Ideal),
    ];
    eprintln!("running static + SD (MAXSD 10) on {} at scale {scale}…", w.label());
    let results = sweep_with(&configs, args.threads, run_config);

    let max_nodes = w.cluster(scale).nodes;
    let spec = HeatmapSpec::paper_style(max_nodes);
    let figures = [
        ("Figure 4: slowdown ratio static/SD (>1 = SD better)", HeatMetric::Slowdown),
        ("Figure 5: runtime ratio static/SD (<1 = SD stretched runtimes)", HeatMetric::Runtime),
        ("Figure 6: wait-time ratio static/SD (>1 = SD better)", HeatMetric::WaitTime),
    ];
    for (title, metric) in figures {
        let base = Heatmap::build(spec.clone(), metric, &results[0].outcomes);
        let sd = Heatmap::build(spec.clone(), metric, &results[1].outcomes);
        let ratio = RatioHeatmap::compute(&base, &sd);
        println!("\n=== {title} ===\n");
        println!("{}", ratio.render());
    }

    // Cell population so sparse categories can be discounted like the paper
    // does ("two categories contain few jobs to take some conclusions").
    let base = Heatmap::build(spec.clone(), HeatMetric::Slowdown, &results[0].outcomes);
    println!("\n=== Jobs per category (static run) ===\n");
    let mut header = vec!["runtime\\nodes".to_string()];
    for n in 0..spec.node_buckets() {
        header.push(spec.node_label(n));
    }
    let hdr_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = sched_metrics::Table::new(&hdr_refs);
    for r in 0..spec.runtime_buckets() {
        let mut row = vec![spec.runtime_label(r)];
        for n in 0..spec.node_buckets() {
            row.push(format!("{}", base.cell_count(r, n)));
        }
        t.row(row);
    }
    println!("{}", t.render());
}
