//! Validate the simulator against the paper's expectations.
//!
//! ```sh
//! cargo run --release --bin sd_validate                      # scenarios/expectations.exp
//! cargo run --release --bin sd_validate -- --file my.exp
//! cargo run --release --bin sd_validate -- --list
//! cargo run --release --bin sd_validate -- --claim w3-makespan --claim w3-energy
//! ```
//!
//! Exit code 0 when every claim passes, 1 on any failure, 2 on usage or
//! file errors. The report is deterministic for a given expectation file.

use sd_bench::validate::{evaluate, parse_expectations, report};
use sd_bench::{CliArgs, CliError, USAGE};

const EXTRA_USAGE: &str = "sd_validate — check the paper's directional expectations

  --file <path>     expectation file (default: scenarios/expectations.exp)
  --claim <name>    only evaluate this claim (repeatable)
  --list            list the claims and exit without running
";

fn fail(msg: &str) -> ! {
    eprintln!("{msg}\n\n{EXTRA_USAGE}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut file = "scenarios/expectations.exp".to_string();
    let mut only: Vec<String> = Vec::new();
    let mut list = false;
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--file" => match it.next() {
                Some(v) => file = v,
                None => fail("--file needs a path"),
            },
            "--claim" => match it.next() {
                Some(v) => only.push(v),
                None => fail("--claim needs a name"),
            },
            "--list" => list = true,
            _ => rest.push(a),
        }
    }
    let common = match CliArgs::parse(rest) {
        Ok(c) => c,
        Err(CliError::Help) => {
            println!("{EXTRA_USAGE}\n{USAGE}");
            std::process::exit(0);
        }
        Err(CliError::Bad(msg)) => fail(&msg),
    };
    common.require_supported("sd_validate", &["--threads"]);

    let text = std::fs::read_to_string(&file)
        .unwrap_or_else(|e| fail(&format!("reading {file}: {e}")));
    let mut claims =
        parse_expectations(&text).unwrap_or_else(|e| fail(&format!("{file}: {e}")));
    if !only.is_empty() {
        for name in &only {
            if !claims.iter().any(|c| &c.name == name) {
                fail(&format!("no claim named `{name}` in {file}"));
            }
        }
        claims.retain(|c| only.contains(&c.name));
    }

    if list {
        for c in &claims {
            println!(
                "{:24} {:12} {:10} [{} seed{}]  {}",
                c.name,
                format!("{:?}", c.workload).to_lowercase(),
                c.metric.label(),
                c.seeds.len(),
                if c.seeds.len() == 1 { "" } else { "s" },
                c.source
            );
        }
        return;
    }

    let runs: usize = claims.iter().map(|c| c.seeds.len() * 2).sum();
    eprintln!(
        "validating {} claim{} (≤ {} runs before dedup) against {file}",
        claims.len(),
        if claims.len() == 1 { "" } else { "s" },
        runs
    );
    let results = evaluate(&claims, common.threads).unwrap_or_else(|e| fail(&e));
    println!("{}", report(&results));
    let failed: Vec<&str> = results
        .iter()
        .filter(|r| !r.pass)
        .map(|r| r.claim.name.as_str())
        .collect();
    if failed.is_empty() {
        eprintln!("all {} claims hold", results.len());
    } else {
        eprintln!("{} claim(s) FAILED: {}", failed.len(), failed.join(", "));
        std::process::exit(1);
    }
}
