//! **Figure 8** — ideal vs worst-case runtime model under SD-Policy
//! DynAVGSD, Workloads 1–4, normalised to static backfill.
//!
//! Paper findings: the worst-case model costs up to 11 % response time (W1)
//! vs the ideal model, ≤ 1.5 % on W3/W4; slowdown +16 % (W1), +3.5 % (W3),
//! +1 % (W4); makespan +9 % (W3), < 1 % elsewhere; W2 is unaffected because
//! exact estimates prevent the load imbalance entirely.

use sd_bench::{run_config, sweep_with, CliArgs, ModelKind, PolicyKind, RunConfig};
use sd_policy::MaxSlowdown;
use sched_metrics::{normalized, Summary, Table};
use workload::PaperWorkload;

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("fig8_models", &["--threads"]);
    let mut configs = Vec::new();
    for &w in &PaperWorkload::SIMULATED {
        let scale = args.effective_scale(sd_bench::default_scale(w));
        for model in [ModelKind::Ideal, ModelKind::WorstCase] {
            configs.push(
                RunConfig::new(w, PolicyKind::StaticBackfill)
                    .with_scale(scale)
                    .with_seed(args.effective_seed())
                    .with_model(model),
            );
            configs.push(
                RunConfig::new(w, PolicyKind::Sd(MaxSlowdown::DynAvg))
                    .with_scale(scale)
                    .with_seed(args.effective_seed())
                    .with_model(model),
            );
        }
    }
    eprintln!("running {} simulations…", configs.len());
    let results = sweep_with(&configs, args.threads, run_config);

    println!("=== Figure 8: ideal vs worst-case runtime model (SD DynAVGSD, normalized to static) ===\n");
    let mut t = Table::new(&[
        "workload",
        "metric",
        "ideal",
        "worst-case",
        "worst/ideal",
    ]);
    for (wi, &w) in PaperWorkload::SIMULATED.iter().enumerate() {
        let cores = w
            .cluster(args.effective_scale(sd_bench::default_scale(w)))
            .total_cores();
        // Layout per workload: [static-ideal, sd-ideal, static-worst, sd-worst]
        let base = wi * 4;
        let s_static_i = Summary::from_result("si", &results[base], cores);
        let s_sd_i = Summary::from_result("di", &results[base + 1], cores);
        let s_static_w = Summary::from_result("sw", &results[base + 2], cores);
        let s_sd_w = Summary::from_result("dw", &results[base + 3], cores);
        let rows: [(&str, f64, f64); 3] = [
            (
                "makespan",
                normalized(s_sd_i.makespan as f64, s_static_i.makespan as f64),
                normalized(s_sd_w.makespan as f64, s_static_w.makespan as f64),
            ),
            (
                "response",
                normalized(s_sd_i.mean_response, s_static_i.mean_response),
                normalized(s_sd_w.mean_response, s_static_w.mean_response),
            ),
            (
                "slowdown",
                normalized(s_sd_i.mean_slowdown, s_static_i.mean_slowdown),
                normalized(s_sd_w.mean_slowdown, s_static_w.mean_slowdown),
            ),
        ];
        for (name, ideal, worst) in rows {
            t.row(vec![
                w.short().to_string(),
                name.to_string(),
                format!("{ideal:.3}"),
                format!("{worst:.3}"),
                format!("{:.3}", if ideal == 0.0 { 1.0 } else { worst / ideal }),
            ]);
        }
    }
    println!("{}", t.render());
    println!(
        "paper deltas (worst vs ideal): response +11% (W1), ≤1.5% (W3/W4); \
         slowdown +16% (W1), +3.5% (W3), +1% (W4); makespan +9% (W3); W2 unaffected"
    );
}
