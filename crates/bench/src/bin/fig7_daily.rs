//! **Figure 7** — per-day average slowdown (static vs SD-Policy MAXSD 10)
//! and jobs scheduled with malleability per day, on Workload 4.
//!
//! Paper reference points: slowdown peaks are strongly flattened; totals are
//! 20 476 malleable-scheduled jobs and 17 102 mates (10.3 % / 8.6 % of the
//! 198 K-job workload).

use sd_bench::{run_config, sweep_with, CliArgs, ModelKind, PolicyKind, RunConfig};
use sd_policy::MaxSlowdown;
use sched_metrics::{DailySeries, Table};
use workload::PaperWorkload;

fn main() {
    let args = CliArgs::from_env();
    args.require_supported("fig7_daily", &["--threads"]);
    let w = PaperWorkload::W4Curie;
    let scale = args.effective_scale(sd_bench::default_scale(w));
    let configs = vec![
        RunConfig::new(w, PolicyKind::StaticBackfill)
            .with_scale(scale)
            .with_seed(args.effective_seed())
            .with_model(ModelKind::Ideal),
        RunConfig::new(w, PolicyKind::Sd(MaxSlowdown::Static(10.0)))
            .with_scale(scale)
            .with_seed(args.effective_seed())
            .with_model(ModelKind::Ideal),
    ];
    eprintln!("running static + SD (MAXSD 10) on {}…", w.label());
    let results = sweep_with(&configs, args.threads, run_config);

    let static_daily = DailySeries::compute(&results[0].outcomes);
    let sd_daily = DailySeries::compute(&results[1].outcomes);

    println!("=== Figure 7: slowdown per day + malleable jobs per day ===\n");
    let mut t = Table::new(&["day", "static slowdown", "SD slowdown", "malleable starts", "jobs done"]);
    let days = static_daily.days().max(sd_daily.days());
    for d in 0..days {
        let s = static_daily.slowdown.get(d).copied().unwrap_or(0.0);
        let m = sd_daily.slowdown.get(d).copied().unwrap_or(0.0);
        let mal = sd_daily.malleable_started.get(d).copied().unwrap_or(0);
        let done = sd_daily.completed.get(d).copied().unwrap_or(0);
        t.row(vec![
            format!("{d}"),
            format!("{s:.1}"),
            format!("{m:.1}"),
            format!("{mal}"),
            format!("{done}"),
        ]);
    }
    println!("{}", t.render());

    let total_jobs = results[1].outcomes.len() as f64;
    let malleable = results[1].stats.started_malleable;
    let mates = results[1].stats.unique_mates;
    println!("peak daily slowdown: static {:.1} vs SD {:.1}", static_daily.peak_slowdown(), sd_daily.peak_slowdown());
    println!(
        "malleable-scheduled jobs: {} ({:.1}%), mates: {} ({:.1}%)",
        malleable,
        malleable as f64 / total_jobs * 100.0,
        mates,
        mates as f64 / total_jobs * 100.0
    );
    println!("paper (full scale): 20476 (10.3%), 17102 (8.6%)");
}
