//! Experiment execution: one simulation run or a parallel sweep.

use drom::SharingFactor;
use sd_policy::{MaxSlowdown, SdPolicy, SdPolicyConfig};
use slurm_sim::{
    AppAwareModel, Controller, IdealModel, RateModel, SimResult, SimState, SlurmConfig,
    StaticBackfill, WorstCaseModel,
};
#[cfg(test)]
use slurm_sim::BackfillMode;
use workload::PaperWorkload;

/// Which runtime model drives the simulator (paper §3.4 / §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    Ideal,
    WorstCase,
    /// Application-behaviour model (Workload 5 / Fig. 9).
    AppAware,
}

impl ModelKind {
    pub fn instantiate(self) -> Box<dyn RateModel> {
        match self {
            ModelKind::Ideal => Box::new(IdealModel),
            ModelKind::WorstCase => Box::new(WorstCaseModel),
            ModelKind::AppAware => Box::new(AppAwareModel),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Ideal => "ideal",
            ModelKind::WorstCase => "worst-case",
            ModelKind::AppAware => "app-aware",
        }
    }
}

/// Which scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// The baseline everything is normalised against.
    StaticBackfill,
    /// SD-Policy with the given MAX_SLOWDOWN cut-off.
    Sd(MaxSlowdown),
}

impl PolicyKind {
    pub fn label(self) -> String {
        match self {
            PolicyKind::StaticBackfill => "static".to_string(),
            PolicyKind::Sd(m) => m.label(),
        }
    }
}

/// A fully specified experiment run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    pub workload: PaperWorkload,
    pub policy: PolicyKind,
    pub model: ModelKind,
    pub scale: f64,
    pub seed: u64,
    pub sharing: SharingFactor,
    /// Override the SLURM config (None = sensible default for the scale).
    pub slurm: Option<SlurmConfig>,
    /// Override policy tunables (cut-off is taken from `policy`).
    pub sd_cfg: Option<SdPolicyConfig>,
}

impl RunConfig {
    pub fn new(workload: PaperWorkload, policy: PolicyKind) -> RunConfig {
        RunConfig {
            workload,
            policy,
            model: ModelKind::Ideal,
            scale: default_scale(workload),
            seed: 42,
            sharing: SharingFactor::HALF,
            slurm: None,
            sd_cfg: None,
        }
    }

    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The SLURM config this run executes with (the explicit override or
    /// the per-workload heuristic). Public so the macro-benchmark can flip
    /// `incremental` on an otherwise identical configuration.
    pub fn slurm_config(&self) -> SlurmConfig {
        if let Some(c) = &self.slurm {
            return c.clone();
        }
        // The full Curie trace needs the O(R+Q) EASY pass; everything else
        // uses the more faithful conservative profile.
        let big = matches!(self.workload, PaperWorkload::W4Curie) && self.scale > 0.15;
        if big {
            SlurmConfig::large_scale()
        } else {
            SlurmConfig::default()
        }
    }
}

/// Default CI-sized scales per workload: a few thousand jobs, seconds of
/// wall time, same offered load as the paper-scale runs.
pub fn default_scale(w: PaperWorkload) -> f64 {
    w.default_ci_scale()
}

/// Executes one experiment run.
pub fn run_config(cfg: &RunConfig) -> SimResult {
    let slurm = cfg.slurm_config();
    let model = cfg.model.instantiate();
    let state = if cfg.workload == PaperWorkload::W5RealRun {
        let apps = PaperWorkload::generate_apps(cfg.seed);
        SimState::with_apps(
            cfg.workload.cluster(cfg.scale),
            slurm,
            &apps,
            model,
            cfg.sharing,
        )
    } else {
        let trace = cfg.workload.generate(cfg.seed, cfg.scale);
        SimState::new(
            cfg.workload.cluster(cfg.scale),
            slurm,
            &trace,
            model,
            cfg.sharing,
        )
    };
    match cfg.policy {
        PolicyKind::StaticBackfill => Controller::new(state, StaticBackfill).run(),
        PolicyKind::Sd(cutoff) => {
            let mut sd_cfg = cfg.sd_cfg.clone().unwrap_or_default();
            sd_cfg.max_slowdown = cutoff;
            Controller::new(state, SdPolicy::new(sd_cfg)).run()
        }
    }
}

/// Runs many configurations in parallel (one scoped thread each, bounded by
/// the machine's parallelism) and returns results in input order.
pub fn sweep(configs: &[RunConfig]) -> Vec<SimResult> {
    sweep_with(configs, None, run_config)
}

/// Generic fan-out over scoped threads: applies `run` to every item and
/// returns results in input order. `threads = None` uses the machine's
/// available parallelism; the scenario campaign runner and the figure
/// binaries share this pool.
pub fn sweep_with<T, R>(items: &[T], threads: Option<usize>, run: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let max_threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    let results: Vec<std::sync::Mutex<Option<R>>> =
        items.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..max_threads.max(1).min(items.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let res = run(&items[i]);
                *results[i].lock().expect("sweep lock poisoned") = Some(res);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep lock poisoned")
                .expect("every item ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_run_completes_all_jobs() {
        let cfg = RunConfig::new(PaperWorkload::W3Ricc, PolicyKind::StaticBackfill)
            .with_scale(0.02);
        let res = run_config(&cfg);
        assert!(res.outcomes.len() >= 300);
        assert_eq!(res.leftover_pending, 0);
        assert_eq!(res.leftover_running, 0);
    }

    #[test]
    fn sd_run_uses_malleability() {
        let cfg = RunConfig::new(
            PaperWorkload::W3Ricc,
            PolicyKind::Sd(MaxSlowdown::Infinite),
        )
        .with_scale(0.02);
        let res = run_config(&cfg);
        assert_eq!(res.leftover_pending, 0);
        assert!(res.stats.started_malleable > 0, "malleability exercised");
    }

    #[test]
    fn sweep_matches_individual_runs() {
        let cfgs = vec![
            RunConfig::new(PaperWorkload::W3Ricc, PolicyKind::StaticBackfill).with_scale(0.02),
            RunConfig::new(PaperWorkload::W3Ricc, PolicyKind::Sd(MaxSlowdown::DynAvg))
                .with_scale(0.02),
        ];
        let swept = sweep(&cfgs);
        let solo0 = run_config(&cfgs[0]);
        assert_eq!(swept[0].outcomes, solo0.outcomes, "sweep is deterministic");
        assert_eq!(swept.len(), 2);
    }

    #[test]
    fn sweep_with_preserves_order_and_honours_thread_cap() {
        let items: Vec<u64> = (0..37).collect();
        let out = sweep_with(&items, Some(3), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // A zero thread request still runs everything (floored to 1).
        let out1 = sweep_with(&items, Some(0), |x| x + 1);
        assert_eq!(out1.len(), 37);
    }

    #[test]
    fn labels() {
        assert_eq!(PolicyKind::StaticBackfill.label(), "static");
        assert_eq!(PolicyKind::Sd(MaxSlowdown::Static(5.0)).label(), "MAXSD 5");
        assert_eq!(ModelKind::Ideal.label(), "ideal");
    }

    #[test]
    fn w4_large_scale_switches_to_easy() {
        let cfg = RunConfig::new(PaperWorkload::W4Curie, PolicyKind::StaticBackfill)
            .with_scale(0.5);
        assert_eq!(cfg.slurm_config().backfill_mode, BackfillMode::Easy);
        let small = RunConfig::new(PaperWorkload::W4Curie, PolicyKind::StaticBackfill)
            .with_scale(0.02);
        assert_eq!(
            small.slurm_config().backfill_mode,
            BackfillMode::Conservative
        );
    }
}
