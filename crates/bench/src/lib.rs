//! # sd-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §5 for the
//! index). This library holds the shared machinery:
//!
//! * [`runner`] — configure + execute a simulation (workload × policy ×
//!   runtime model × scale) and parallel sweeps over configurations,
//! * [`cli`] — the tiny flag parser shared by the binaries
//!   (`--scale`, `--seed`, `--full`, `--swf <file>`, `--threads`, `--out`),
//! * [`validate`] — the paper-expectations harness behind the
//!   `sd_validate` binary (machine-checkable claims vs the static baseline),
//! * [`macrobench`] — the timed end-to-end panel behind the `bench_macro`
//!   binary (`BENCH_<rev>.json` perf trajectory, legacy-vs-incremental A/B,
//!   CI regression gate).
//!
//! Every binary prints the paper's rows/series next to the measured values
//! so EXPERIMENTS.md can record paper-vs-measured directly. The
//! `run_scenario` binary goes beyond the paper: it executes declarative
//! `sd-scenario` files/campaigns over the same [`runner::sweep_with`] pool.

pub mod cli;
pub mod macrobench;
pub mod runner;
pub mod validate;

pub use cli::{CliArgs, CliError, USAGE};
pub use runner::{
    default_scale, run_config, sweep, sweep_with, ModelKind, PolicyKind, RunConfig,
};
