//! Macro-benchmark: timed end-to-end simulator runs (`bench_macro` binary).
//!
//! The criterion microbenches cover isolated kernels; this module times what
//! the ISSUE-4 refactor actually optimises — whole scheduler runs — and
//! records the perf trajectory in `BENCH_<rev>.json` files. Every panel
//! entry is executed on both hot paths (`incremental = false`, the seed
//! rebuild-everything behaviour, and `incremental = true`, the cached /
//! indexed / gated path), which yields a machine-independent speedup ratio
//! next to the absolute wall times, and doubles as an equivalence check:
//! both paths must produce identical outcomes.
//!
//! Wall times are measured on whatever machine runs the benchmark, so the
//! JSON is a diagnostic artifact, not a deterministic export. The
//! `check_sim_s` section is a flat map the CI regression gate re-reads with
//! a trivial scanner (no JSON dependency, see [`parse_check_map`]).

use crate::runner::{PolicyKind, RunConfig};
use sd_policy::{MaxSlowdown, SdPolicy, SdPolicyConfig};
use slurm_sim::{AvailBackendKind, Controller, SimResult, SimState, StaticBackfill};
use std::fmt::Write as _;
use std::time::Instant;
use workload::PaperWorkload;

/// One panel entry: a named configuration timed on both hot paths.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Stable name used as the regression-gate key (`W3 sd ci`, …).
    pub name: String,
    pub workload: PaperWorkload,
    pub policy: PolicyKind,
    pub scale: f64,
    pub seed: u64,
    /// Availability backend both modes run against. `--backend` keeps the
    /// entry names unchanged so `--check` baselines stay comparable.
    pub backend: AvailBackendKind,
}

/// Timing of one mode (legacy or incremental) over `iters` repetitions.
#[derive(Debug, Clone)]
pub struct ModeTiming {
    pub sim_s_min: f64,
    pub sim_s_mean: f64,
    pub sched_passes: u64,
    pub passes_skipped: u64,
    pub events: u64,
    pub peak_profile_len: usize,
}

/// A fully measured panel entry.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub entry: BenchEntry,
    pub jobs: usize,
    pub makespan: u64,
    pub mean_slowdown: f64,
    pub malleable_started: u64,
    pub legacy: ModeTiming,
    pub incremental: ModeTiming,
    /// `legacy.sim_s_min / incremental.sim_s_min`.
    pub speedup: f64,
    /// Outcomes, makespan and energy identical across the two paths.
    pub results_match: bool,
}

/// The standard panel: W3/W4 under SD-Policy and the static baseline at
/// CI scale; `full` adds the paper-scale W3 and W4 runs.
pub fn panel(full: bool) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    let mut push = |name: &str, w: PaperWorkload, policy: PolicyKind, scale: f64| {
        out.push(BenchEntry {
            name: name.to_string(),
            workload: w,
            policy,
            scale,
            seed: 42,
            backend: AvailBackendKind::default(),
        });
    };
    let sd = PolicyKind::Sd(MaxSlowdown::DynAvg);
    let st = PolicyKind::StaticBackfill;
    let w3 = PaperWorkload::W3Ricc;
    let w4 = PaperWorkload::W4Curie;
    push("W3 sd ci", w3, sd, w3.default_ci_scale());
    push("W3 static ci", w3, st, w3.default_ci_scale());
    push("W4 sd ci", w4, sd, w4.default_ci_scale());
    push("W4 static ci", w4, st, w4.default_ci_scale());
    if full {
        push("W3 sd full", w3, sd, 1.0);
        push("W3 static full", w3, st, 1.0);
        push("W4 sd full", w4, sd, 1.0);
        push("W4 static full", w4, st, 1.0);
    }
    out
}

/// The A/B panel (`--ab-backends`): every [`panel`] entry duplicated under
/// both availability backends, names suffixed `@profile` / `@slottree`.
/// Pairs must produce identical schedules — [`cross_backend_mismatches`]
/// verifies the summaries after measurement.
pub fn ab_panel(full: bool) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    for base in panel(full) {
        for backend in [AvailBackendKind::Profile, AvailBackendKind::SlotTree] {
            let mut e = base.clone();
            e.name = format!("{} @{}", base.name, backend.label());
            e.backend = backend;
            out.push(e);
        }
    }
    out
}

/// Pairs A/B results by base name (the ` @backend` suffix stripped) and
/// reports any pair whose schedules differ. Bit-level equality is the
/// equivalence suites' job; this is the bench-side sanity net over the
/// summary statistics the JSON records.
pub fn cross_backend_mismatches(results: &[BenchResult]) -> Vec<String> {
    let base_of = |name: &str| name.split(" @").next().unwrap_or(name).to_string();
    let mut bad = Vec::new();
    for (i, a) in results.iter().enumerate() {
        for b in &results[i + 1..] {
            if base_of(&a.entry.name) != base_of(&b.entry.name)
                || a.entry.backend == b.entry.backend
            {
                continue;
            }
            if a.jobs != b.jobs
                || a.makespan != b.makespan
                || a.mean_slowdown.to_bits() != b.mean_slowdown.to_bits()
                || a.malleable_started != b.malleable_started
            {
                bad.push(format!(
                    "`{}` and `{}` disagree: jobs {}/{}, makespan {}/{}, \
                     mean_slowdown {}/{}, malleable {}/{}",
                    a.entry.name,
                    b.entry.name,
                    a.jobs,
                    b.jobs,
                    a.makespan,
                    b.makespan,
                    a.mean_slowdown,
                    b.mean_slowdown,
                    a.malleable_started,
                    b.malleable_started,
                ));
            }
        }
    }
    bad
}

/// Runs the simulation once against a pre-generated trace; only state
/// construction and the controller loop are inside the timer, so the
/// legacy/incremental ratio measures the scheduler hot path, not the
/// (identical) workload generation.
fn run_once(entry: &BenchEntry, trace: &swf::Trace, incremental: bool) -> (f64, SimResult) {
    let cfg = RunConfig::new(entry.workload, entry.policy)
        .with_scale(entry.scale)
        .with_seed(entry.seed);
    let mut slurm = cfg.slurm_config();
    slurm.incremental = incremental;
    slurm.avail_backend = entry.backend;
    let model = cfg.model.instantiate();
    let spec = entry.workload.cluster(entry.scale);
    let t0 = Instant::now();
    let state = SimState::new(spec, slurm, trace, model, cfg.sharing);
    let res = match entry.policy {
        PolicyKind::StaticBackfill => Controller::new(state, StaticBackfill).run(),
        PolicyKind::Sd(cutoff) => {
            let sd_cfg = SdPolicyConfig {
                max_slowdown: cutoff,
                ..SdPolicyConfig::default()
            };
            Controller::new(state, SdPolicy::new(sd_cfg)).run()
        }
    };
    (t0.elapsed().as_secs_f64(), res)
}

fn mode_timing(times: &[f64], res: &SimResult) -> ModeTiming {
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    ModeTiming {
        sim_s_min: min,
        sim_s_mean: mean,
        sched_passes: res.stats.sched_passes,
        passes_skipped: res.stats.passes_skipped,
        events: res.stats.events_dispatched,
        peak_profile_len: res.stats.peak_profile_len,
    }
}

/// Measures one entry on both paths. The two modes alternate within each of
/// the `iters` repetitions so slow drift in machine speed (thermal, noisy
/// neighbours) cancels out of the speedup ratio; min and mean are reported.
pub fn measure(entry: &BenchEntry, iters: usize) -> BenchResult {
    let trace = entry.workload.generate(entry.seed, entry.scale);
    let mut legacy_times = Vec::with_capacity(iters);
    let mut incr_times = Vec::with_capacity(iters);
    let mut pair = None;
    for _ in 0..iters.max(1) {
        let (s, lr) = run_once(entry, &trace, false);
        legacy_times.push(s);
        let (s, ir) = run_once(entry, &trace, true);
        incr_times.push(s);
        pair = Some((lr, ir));
    }
    let (legacy_res, incr_res) = pair.expect("at least one iteration");
    let legacy = mode_timing(&legacy_times, &legacy_res);
    let incremental = mode_timing(&incr_times, &incr_res);
    let results_match = legacy_res.outcomes == incr_res.outcomes
        && legacy_res.makespan == incr_res.makespan
        && legacy_res.energy_joules == incr_res.energy_joules;
    BenchResult {
        entry: entry.clone(),
        jobs: incr_res.outcomes.len(),
        makespan: incr_res.makespan,
        mean_slowdown: incr_res.mean_slowdown(),
        malleable_started: incr_res.stats.started_malleable,
        speedup: legacy.sim_s_min / incremental.sim_s_min.max(1e-9),
        legacy,
        incremental,
        results_match,
    }
}

fn fmt_secs(v: f64) -> String {
    format!("{v:.4}")
}

fn mode_json(m: &ModeTiming) -> String {
    format!(
        "{{\"sim_s_min\": {}, \"sim_s_mean\": {}, \"sched_passes\": {}, \
         \"passes_skipped\": {}, \"events\": {}, \"peak_profile_len\": {}}}",
        fmt_secs(m.sim_s_min),
        fmt_secs(m.sim_s_mean),
        m.sched_passes,
        m.passes_skipped,
        m.events,
        m.peak_profile_len
    )
}

/// Renders the results as the `BENCH_<rev>.json` payload (fixed key order).
pub fn render_json(rev: &str, iters: usize, results: &[BenchResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"rev\": \"{rev}\",");
    let _ = writeln!(out, "  \"iters\": {iters},");
    let _ = writeln!(out, "  \"runs\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"workload\": \"{}\", \"policy\": \"{}\", \
             \"backend\": \"{}\", \"scale\": {}, \"seed\": {}, \"jobs\": {}, \
             \"makespan\": {}, \"mean_slowdown\": {:.4}, \"malleable_started\": {}, \
             \"results_match\": {}, \"speedup\": {:.2},\n     \"legacy\": {},\n     \
             \"incremental\": {}}}",
            r.entry.name,
            r.entry.workload.short(),
            r.entry.policy.label(),
            r.entry.backend.label(),
            r.entry.scale,
            r.entry.seed,
            r.jobs,
            r.makespan,
            r.mean_slowdown,
            r.malleable_started,
            r.results_match,
            r.speedup,
            mode_json(&r.legacy),
            mode_json(&r.incremental),
        );
        let _ = writeln!(out, "{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    // Flat map the CI regression gate re-reads without a JSON parser.
    let _ = writeln!(out, "  \"check_sim_s\": {{");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            out,
            "    \"{}\": {}{}",
            r.entry.name,
            fmt_secs(r.incremental.sim_s_min),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Extracts the `check_sim_s` map from a `BENCH_*.json` payload written by
/// [`render_json`] (line-oriented scan; no JSON dependency).
pub fn parse_check_map(payload: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut in_map = false;
    for line in payload.lines() {
        let t = line.trim();
        if t.starts_with("\"check_sim_s\"") {
            in_map = true;
            continue;
        }
        if !in_map {
            continue;
        }
        if t.starts_with('}') {
            break;
        }
        let Some((key, value)) = t.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim().trim_end_matches(',');
        if let Ok(v) = value.parse::<f64>() {
            out.push((key, v));
        }
    }
    out
}

/// Compares measured results against a committed baseline, normalised for
/// machine speed: the per-entry current/baseline ratios are scaled by their
/// median, so a uniformly slower (or faster) machine — a shared CI runner
/// vs the laptop that produced the baseline — cancels out, while a single
/// entry regressing relative to the others still exceeds `tolerance`.
/// Uniform algorithmic regressions are the `--min-speedup` gate's job (the
/// legacy/incremental ratio is measured on one machine and needs no
/// baseline). Returns the regressions as human-readable lines (empty =
/// pass).
pub fn check_regressions(
    results: &[BenchResult],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut bad_coverage = Vec::new();
    // A baseline entry with no matching measurement means the gate's
    // coverage silently shrank (panel rename/removal without regenerating
    // the baseline) — that is itself a failure, not a skip.
    for (name, _) in baseline {
        if !results.iter().any(|r| r.entry.name == *name) {
            bad_coverage.push(format!(
                "baseline entry `{name}` has no matching measurement — \
                 regenerate the baseline after changing the panel"
            ));
        }
    }
    let mut ratios: Vec<(usize, f64, f64)> = Vec::new(); // (result idx, base, ratio)
    for (i, r) in results.iter().enumerate() {
        if let Some((_, base)) = baseline.iter().find(|(k, _)| *k == r.entry.name) {
            if *base > 0.0 {
                ratios.push((i, *base, r.incremental.sim_s_min / base));
            }
        }
    }
    if ratios.is_empty() {
        return bad_coverage;
    }
    let mut sorted: Vec<f64> = ratios.iter().map(|&(_, _, q)| q).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    // Lower median: conservative for even panel sizes (flags the upper half
    // rather than hiding it inside the factor).
    let machine_factor = sorted[(sorted.len() - 1) / 2];
    let mut bad = bad_coverage;
    for (i, base, ratio) in ratios {
        let limit = machine_factor * (1.0 + tolerance);
        if ratio > limit {
            let r = &results[i];
            bad.push(format!(
                "{}: {:.4}s is {:.2}× its baseline {:.4}s — more than {:.0}% over this \
                 machine's median factor {:.2}×",
                r.entry.name,
                r.incremental.sim_s_min,
                ratio,
                base,
                tolerance * 100.0,
                machine_factor
            ));
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_names_are_unique_keys() {
        for full in [false, true] {
            let p = panel(full);
            let mut names: Vec<&str> = p.iter().map(|e| e.name.as_str()).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), p.len());
        }
        assert_eq!(panel(false).len(), 4);
        assert_eq!(panel(true).len(), 8);
    }

    #[test]
    fn ab_panel_pairs_every_entry_across_backends() {
        let ab = ab_panel(false);
        assert_eq!(ab.len(), 2 * panel(false).len());
        for pair in ab.chunks(2) {
            assert_eq!(pair[0].backend, AvailBackendKind::Profile);
            assert_eq!(pair[1].backend, AvailBackendKind::SlotTree);
            assert!(pair[0].name.ends_with("@profile"), "{}", pair[0].name);
            assert!(pair[1].name.ends_with("@slottree"), "{}", pair[1].name);
            assert_eq!(
                pair[0].name.split(" @").next(),
                pair[1].name.split(" @").next()
            );
        }
        let mut names: Vec<&str> = ab.iter().map(|e| e.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ab.len());
    }

    #[test]
    fn cross_backend_mismatch_detection() {
        let mk = |name: &str, backend: AvailBackendKind, makespan: u64| BenchResult {
            entry: BenchEntry {
                name: name.into(),
                workload: PaperWorkload::W3Ricc,
                policy: PolicyKind::StaticBackfill,
                scale: 0.02,
                seed: 1,
                backend,
            },
            jobs: 5,
            makespan,
            mean_slowdown: 1.5,
            malleable_started: 0,
            legacy: ModeTiming {
                sim_s_min: 0.1,
                sim_s_mean: 0.1,
                sched_passes: 1,
                passes_skipped: 0,
                events: 1,
                peak_profile_len: 1,
            },
            incremental: ModeTiming {
                sim_s_min: 0.1,
                sim_s_mean: 0.1,
                sched_passes: 1,
                passes_skipped: 0,
                events: 1,
                peak_profile_len: 1,
            },
            speedup: 1.0,
            results_match: true,
        };
        let agree = vec![
            mk("W3 sd ci @profile", AvailBackendKind::Profile, 100),
            mk("W3 sd ci @slottree", AvailBackendKind::SlotTree, 100),
        ];
        assert!(cross_backend_mismatches(&agree).is_empty());
        let disagree = vec![
            mk("W3 sd ci @profile", AvailBackendKind::Profile, 100),
            mk("W3 sd ci @slottree", AvailBackendKind::SlotTree, 101),
        ];
        let bad = cross_backend_mismatches(&disagree);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("makespan 100/101"), "{bad:?}");
        // Different base names never pair.
        let unrelated = vec![
            mk("W3 sd ci @profile", AvailBackendKind::Profile, 100),
            mk("W4 sd ci @slottree", AvailBackendKind::SlotTree, 999),
        ];
        assert!(cross_backend_mismatches(&unrelated).is_empty());
    }

    #[test]
    fn measure_reports_matching_modes_on_tiny_run() {
        // A very small W3 run: both paths must agree bit-for-bit.
        let entry = BenchEntry {
            name: "tiny".into(),
            workload: PaperWorkload::W3Ricc,
            policy: PolicyKind::Sd(MaxSlowdown::DynAvg),
            scale: 0.02,
            seed: 7,
            backend: AvailBackendKind::Profile,
        };
        let r = measure(&entry, 1);
        assert!(r.results_match, "legacy and incremental paths diverged");
        assert!(r.jobs > 0);
        assert!(r.incremental.sim_s_min > 0.0);
        assert_eq!(r.incremental.sched_passes + r.incremental.passes_skipped,
                   r.legacy.sched_passes, "gating only skips, never adds");
        assert!(r.incremental.peak_profile_len > 0);
    }

    #[test]
    fn json_roundtrips_through_check_map() {
        let entry = BenchEntry {
            name: "W3 sd ci".into(),
            workload: PaperWorkload::W3Ricc,
            policy: PolicyKind::StaticBackfill,
            scale: 0.02,
            seed: 1,
            backend: AvailBackendKind::Profile,
        };
        let timing = ModeTiming {
            sim_s_min: 0.1234,
            sim_s_mean: 0.2,
            sched_passes: 10,
            passes_skipped: 2,
            events: 40,
            peak_profile_len: 9,
        };
        let res = BenchResult {
            entry,
            jobs: 5,
            makespan: 100,
            mean_slowdown: 1.5,
            malleable_started: 0,
            legacy: timing.clone(),
            incremental: timing,
            speedup: 1.0,
            results_match: true,
        };
        let mut other = res.clone();
        other.entry.name = "W3 static ci".into();
        other.incremental.sim_s_min = 0.05;
        let both = vec![res.clone(), other.clone()];
        let json = render_json("abc123", 3, &both);
        assert!(json.contains("\"rev\": \"abc123\""));
        let map = parse_check_map(&json);
        assert_eq!(
            map,
            vec![
                ("W3 sd ci".to_string(), 0.1234),
                ("W3 static ci".to_string(), 0.05)
            ]
        );

        // Regression gate, machine-normalised at 25 % tolerance: identical
        // numbers pass, and so does a uniformly 2× slower machine…
        assert!(check_regressions(&both, &map, 0.25).is_empty());
        let slower_machine: Vec<BenchResult> = both
            .iter()
            .cloned()
            .map(|mut r| {
                r.incremental.sim_s_min *= 2.0;
                r
            })
            .collect();
        assert!(
            check_regressions(&slower_machine, &map, 0.25).is_empty(),
            "uniform machine slowdown must not trip the gate"
        );
        // …but one entry regressing relative to the others fails.
        let mut one_bad = both.clone();
        one_bad[0].incremental.sim_s_min = 0.2;
        let bad = check_regressions(&one_bad, &map, 0.25);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("W3 sd ci"), "{bad:?}");

        // A baseline entry the panel no longer measures is a failure, not a
        // silent coverage loss.
        let mut stale = map.clone();
        stale.push(("W9 renamed ci".to_string(), 0.1));
        let bad = check_regressions(&both, &stale, 0.25);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].contains("W9 renamed ci"), "{bad:?}");
    }
}
