//! `sd-validate` — the paper-expectations harness.
//!
//! The paper's evaluation makes *directional* claims: SD-Policy reduces
//! slowdown, response time, makespan and energy relative to static backfill
//! (Tables 1/2, Figs. 1–9), with rough magnitudes per workload. This module
//! encodes those claims as a machine-checkable **expectation file**
//! (`scenarios/expectations.exp`), runs the scenario engine against it over
//! a fixed seed panel, and reports pass/fail per claim.
//!
//! A claim compares a mean Δ% — `(variant / static − 1) × 100`, averaged
//! over the panel — against a window `[min_pct, max_pct]`. Directional
//! claims set only `max_pct = 0` (no sign flip); magnitude claims close the
//! window on both sides. The panel mean, not a single seed, carries the
//! claim: single-seed makespan/energy deltas are tail-composition noise of
//! several percent either way (DESIGN.md §8), which is exactly how the
//! original fidelity regression stayed hidden.
//!
//! The file reuses the scenario format (`#` comments, `[claim]` sections,
//! `key = value`) and the scenario vocabulary for `workload`, `model` and
//! `maxsd`, so one grammar describes both experiments and their expected
//! outcomes.

use crate::runner::sweep_with;
use sd_scenario::format::{parse_f64, parse_list, parse_raw_with, parse_u64, RawSection};
use sd_scenario::{
    execute, MaxSdDecl, ModelDecl, ParseError, PolicyKindDecl, RunPoint, Scenario, SourceKind,
    TenantQueueDecl, TenantsDecl,
};
use slurm_sim::SimResult;
use std::collections::BTreeMap;

/// Which run aggregate a claim constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    Slowdown,
    Response,
    Wait,
    Makespan,
    Energy,
    /// Dominant tenant's share of consumed node-seconds (1.0 untenanted) —
    /// pins how much of the machine the heaviest tenant captures.
    TenantShare,
}

impl Metric {
    fn parse_str(v: &str, line: usize) -> Result<Self, ParseError> {
        match v {
            "slowdown" => Ok(Metric::Slowdown),
            "response" => Ok(Metric::Response),
            "wait" => Ok(Metric::Wait),
            "makespan" => Ok(Metric::Makespan),
            "energy" => Ok(Metric::Energy),
            "tenant_share" => Ok(Metric::TenantShare),
            v => Err(ParseError::new(
                line,
                format!(
                    "`metric`: unknown metric `{v}` \
                     (slowdown|response|wait|makespan|energy|tenant_share)"
                ),
            )),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Metric::Slowdown => "slowdown",
            Metric::Response => "response",
            Metric::Wait => "wait",
            Metric::Makespan => "makespan",
            Metric::Energy => "energy",
            Metric::TenantShare => "tenant_share",
        }
    }

    fn extract(self, res: &SimResult) -> f64 {
        match self {
            Metric::Slowdown => res.mean_slowdown(),
            Metric::Response => res.mean_response(),
            Metric::Wait => res.mean_wait(),
            Metric::Makespan => res.makespan as f64,
            Metric::Energy => res.energy_joules,
            Metric::TenantShare => dominant_tenant_share(res),
        }
    }
}

/// Largest per-tenant share of the run's consumed node-seconds; 1.0 when
/// every outcome is on the anonymous tenant 0 (or the run is empty).
fn dominant_tenant_share(res: &SimResult) -> f64 {
    let mut by_tenant: BTreeMap<u32, u64> = BTreeMap::new();
    let mut total: u64 = 0;
    for o in &res.outcomes {
        let ns = o.nodes as u64 * o.runtime();
        *by_tenant.entry(o.tenant).or_default() += ns;
        total += ns;
    }
    if total == 0 {
        return 1.0;
    }
    by_tenant.values().max().copied().unwrap_or(0) as f64 / total as f64
}

/// One paper claim: a workload/policy configuration, a metric, and the
/// expected Δ% window vs the static-backfill baseline.
#[derive(Debug, Clone)]
pub struct Claim {
    pub name: String,
    /// Paper anchor (free text): `Table 2`, `Fig. 3`, `real-run headline`.
    pub source: String,
    pub workload: SourceKind,
    /// `None` → the workload's default CI scale.
    pub scale: Option<f64>,
    pub seeds: Vec<u64>,
    pub model: ModelDecl,
    pub maxsd: MaxSdDecl,
    /// `Some` runs both policies under a tenanted configuration ([tenants]
    /// section: the count/skew/quota knobs of the scenario layer).
    pub tenants: Option<TenantsDecl>,
    pub metric: Metric,
    /// Mean Δ% must be ≤ this (e.g. `0` = "must not regress the sign").
    pub max_pct: Option<f64>,
    /// Mean Δ% must be ≥ this (rough-magnitude floor).
    pub min_pct: Option<f64>,
}

/// Verdict for one evaluated claim.
#[derive(Debug, Clone)]
pub struct ClaimResult {
    pub claim: Claim,
    /// Per-seed Δ%, panel order.
    pub deltas: Vec<f64>,
    pub mean_pct: f64,
    pub pass: bool,
}

/// Parses an expectation file. An optional `[defaults]` section provides
/// `seeds`, `scale`, `model` and `maxsd` for claims that do not set them.
pub fn parse_expectations(text: &str) -> Result<Vec<Claim>, ParseError> {
    let doc = parse_raw_with(text, true)?;
    let mut default_seeds: Vec<u64> = vec![42];
    let mut default_scale: Option<f64> = None;
    let mut default_model = ModelDecl::Ideal;
    let mut default_maxsd = MaxSdDecl::Dyn;
    let mut claims = Vec::new();

    for sec in &doc.sections {
        match sec.name.as_str() {
            "defaults" => {
                for e in &sec.entries {
                    match e.key.as_str() {
                        "seeds" => default_seeds = parse_seed_list(sec, "seeds")?,
                        "scale" => default_scale = Some(parse_f64(e)?),
                        "model" => default_model = ModelDecl::parse_str(&e.value, e.line)?,
                        "maxsd" => default_maxsd = MaxSdDecl::parse_str(&e.value, e.line)?,
                        k => {
                            return Err(ParseError::new(
                                e.line,
                                format!("unknown key `{k}` in [defaults] (seeds|scale|model|maxsd)"),
                            ))
                        }
                    }
                }
            }
            "claim" => claims.push(parse_claim(
                sec,
                &default_seeds,
                default_scale,
                default_model,
                default_maxsd,
            )?),
            other => {
                return Err(ParseError::new(
                    sec.line,
                    format!("unknown section `[{other}]` (defaults|claim)"),
                ))
            }
        }
    }
    if claims.is_empty() {
        return Err(ParseError::new(1, "expectation file declares no [claim]"));
    }
    let mut seen = std::collections::BTreeSet::new();
    for c in &claims {
        if !seen.insert(c.name.clone()) {
            return Err(ParseError::new(1, format!("duplicate claim name `{}`", c.name)));
        }
    }
    Ok(claims)
}

fn parse_seed_list(sec: &RawSection, key: &str) -> Result<Vec<u64>, ParseError> {
    let e = sec
        .get(key)
        .expect("caller checked the key exists in this section");
    let items = parse_list(e)?;
    if items.is_empty() {
        return Err(ParseError::new(e.line, "`seeds`: list must not be empty"));
    }
    items
        .iter()
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| ParseError::new(e.line, format!("`seeds`: bad seed `{v}`")))
        })
        .collect()
}

fn parse_claim(
    sec: &RawSection,
    default_seeds: &[u64],
    default_scale: Option<f64>,
    default_model: ModelDecl,
    default_maxsd: MaxSdDecl,
) -> Result<Claim, ParseError> {
    let mut name = None;
    let mut source = String::new();
    let mut workload = None;
    let mut scale = default_scale;
    let mut seeds = default_seeds.to_vec();
    let mut model = default_model;
    let mut maxsd = default_maxsd;
    let mut metric = None;
    let mut max_pct = None;
    let mut min_pct = None;
    let mut tenants: Option<u32> = None;
    let mut tenant_skew: Option<(f64, usize)> = None;
    let mut quota_fraction: Option<(f64, usize)> = None;
    let mut tenant_queue: Option<(TenantQueueDecl, usize)> = None;

    for e in &sec.entries {
        match e.key.as_str() {
            "name" => name = Some(e.value.clone()),
            "source" => source = e.value.clone(),
            "workload" => workload = Some(SourceKind::parse_str(&e.value, e.line)?),
            "scale" => scale = Some(parse_f64(e)?),
            "seeds" => seeds = parse_seed_list(sec, "seeds")?,
            "seed" => seeds = vec![parse_u64(e)?],
            "model" => model = ModelDecl::parse_str(&e.value, e.line)?,
            "maxsd" => maxsd = MaxSdDecl::parse_str(&e.value, e.line)?,
            "metric" => metric = Some(Metric::parse_str(&e.value, e.line)?),
            "max_pct" => max_pct = Some(parse_f64(e)?),
            "min_pct" => min_pct = Some(parse_f64(e)?),
            "tenants" => {
                let n = parse_u64(e)? as u32;
                if n == 0 {
                    return Err(ParseError::new(e.line, "`tenants`: must be at least 1"));
                }
                tenants = Some(n);
            }
            "tenant_skew" => tenant_skew = Some((parse_f64(e)?, e.line)),
            "quota_fraction" => quota_fraction = Some((parse_f64(e)?, e.line)),
            "tenant_queue" => {
                let q = match e.value.as_str() {
                    "fifo" => TenantQueueDecl::Fifo,
                    "fair_share" => TenantQueueDecl::FairShare,
                    v => {
                        return Err(ParseError::new(
                            e.line,
                            format!("`tenant_queue`: unknown queue policy `{v}` (fifo|fair_share)"),
                        ))
                    }
                };
                tenant_queue = Some((q, e.line));
            }
            k => {
                return Err(ParseError::new(
                    e.line,
                    format!(
                        "unknown key `{k}` in [claim] (name|source|workload|scale|seeds|seed|\
                         model|maxsd|metric|max_pct|min_pct|tenants|tenant_skew|quota_fraction|\
                         tenant_queue)"
                    ),
                ))
            }
        }
    }
    let tenants = match tenants {
        Some(count) => {
            let mut t = TenantsDecl::new(count);
            if let Some((v, _)) = tenant_skew {
                t.skew = v;
            }
            if let Some((v, _)) = quota_fraction {
                t.quota_fraction = v;
            }
            if let Some((q, _)) = tenant_queue {
                t.queue = q;
            }
            Some(t)
        }
        None => {
            for (key, line) in [
                ("tenant_skew", tenant_skew.map(|(_, l)| l)),
                ("quota_fraction", quota_fraction.map(|(_, l)| l)),
                ("tenant_queue", tenant_queue.map(|(_, l)| l)),
            ] {
                if let Some(line) = line {
                    return Err(ParseError::new(
                        line,
                        format!("`{key}` requires a `tenants` count on the claim"),
                    ));
                }
            }
            None
        }
    };
    let name = name.ok_or_else(|| ParseError::new(sec.line, "[claim] needs `name`"))?;
    let workload =
        workload.ok_or_else(|| ParseError::new(sec.line, format!("claim `{name}` needs `workload`")))?;
    if workload == SourceKind::Swf {
        return Err(ParseError::new(
            sec.line,
            format!("claim `{name}`: `swf` replay cannot back a paper claim"),
        ));
    }
    if tenants.is_some() && workload == SourceKind::RealRun {
        return Err(ParseError::new(
            sec.line,
            format!(
                "claim `{name}`: `tenants` requires a synthetic workload \
                 (the tenant mix is stamped by the generator)"
            ),
        ));
    }
    let metric =
        metric.ok_or_else(|| ParseError::new(sec.line, format!("claim `{name}` needs `metric`")))?;
    if max_pct.is_none() && min_pct.is_none() {
        return Err(ParseError::new(
            sec.line,
            format!("claim `{name}` needs `max_pct` and/or `min_pct`"),
        ));
    }
    if let (Some(lo), Some(hi)) = (min_pct, max_pct) {
        if lo > hi {
            return Err(ParseError::new(
                sec.line,
                format!("claim `{name}`: min_pct {lo} > max_pct {hi}"),
            ));
        }
    }
    Ok(Claim {
        name,
        source,
        workload,
        scale,
        seeds,
        model,
        maxsd,
        tenants,
        metric,
        max_pct,
        min_pct,
    })
}

/// Key identifying one deduplicated simulation run across claims.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct RunKey {
    workload: &'static str,
    /// Bit pattern keeps the f64 orderable/exact.
    scale_bits: u64,
    seed: u64,
    model: &'static str,
    /// `static` or the MAXSD label.
    policy: String,
    /// Canonical tenancy label (`-` when untenanted) so tenanted and
    /// untenanted claims never share a run.
    tenancy: String,
}

fn scenario_for(claim: &Claim, seed: u64, sd: bool) -> Scenario {
    let mut s = Scenario::new("validate", claim.workload);
    s.description = format!("sd-validate claim {}", claim.name);
    s.seed = seed;
    s.scale = claim.scale;
    s.policy.kind = if sd {
        PolicyKindDecl::Sd
    } else {
        PolicyKindDecl::Static
    };
    s.policy.maxsd = claim.maxsd;
    s.policy.model = claim.model;
    s.tenants = claim.tenants.clone();
    s
}

fn key_for(claim: &Claim, seed: u64, sd: bool) -> RunKey {
    let scenario = scenario_for(claim, seed, sd);
    RunKey {
        workload: match claim.workload {
            SourceKind::Cirne => "cirne",
            SourceKind::CirneIdeal => "cirne_ideal",
            SourceKind::Ricc => "ricc",
            SourceKind::Curie => "curie",
            SourceKind::RealRun => "real_run",
            SourceKind::Swf => "swf",
        },
        scale_bits: scenario.effective_scale().to_bits(),
        seed,
        model: match claim.model {
            ModelDecl::Ideal => "ideal",
            ModelDecl::WorstCase => "worst_case",
            ModelDecl::AppAware => "app_aware",
        },
        policy: if sd {
            format!("{:?}", claim.maxsd)
        } else {
            "static".to_string()
        },
        tenancy: match &claim.tenants {
            Some(t) => format!(
                "{}:{}:{}:{:?}:{}",
                t.count,
                t.skew.to_bits(),
                t.quota_fraction.to_bits(),
                t.queue,
                t.half_life
            ),
            None => "-".to_string(),
        },
    }
}

/// Evaluates every claim: deduplicates the needed simulation runs, executes
/// them through the scenario engine on the shared thread pool, and checks
/// each claim's Δ window. Returns results in file order.
pub fn evaluate(claims: &[Claim], threads: Option<usize>) -> Result<Vec<ClaimResult>, String> {
    // Collect the unique runs all claims need.
    let mut keyed: BTreeMap<RunKey, Scenario> = BTreeMap::new();
    for c in claims {
        for &seed in &c.seeds {
            for sd in [false, true] {
                keyed
                    .entry(key_for(c, seed, sd))
                    .or_insert_with(|| scenario_for(c, seed, sd));
            }
        }
    }
    let keys: Vec<RunKey> = keyed.keys().cloned().collect();
    let points: Vec<RunPoint> = keyed
        .values()
        .map(|s| RunPoint {
            scenario: s.clone(),
            variant: String::new(),
        })
        .collect();
    let outcomes = sweep_with(&points, threads, execute);
    let mut results: BTreeMap<RunKey, SimResult> = BTreeMap::new();
    for (key, outcome) in keys.into_iter().zip(outcomes) {
        match outcome {
            Ok(o) => {
                results.insert(key, o.result);
            }
            Err(e) => return Err(format!("run failed: {e}")),
        }
    }

    let mut out = Vec::with_capacity(claims.len());
    for c in claims {
        let mut deltas = Vec::with_capacity(c.seeds.len());
        for &seed in &c.seeds {
            let base = &results[&key_for(c, seed, false)];
            let sd = &results[&key_for(c, seed, true)];
            let b = c.metric.extract(base);
            let v = c.metric.extract(sd);
            if b == 0.0 {
                return Err(format!(
                    "claim `{}`: zero baseline for {} (seed {seed})",
                    c.name,
                    c.metric.label()
                ));
            }
            deltas.push((v / b - 1.0) * 100.0);
        }
        let mean_pct = deltas.iter().sum::<f64>() / deltas.len() as f64;
        let pass = c.max_pct.is_none_or(|hi| mean_pct <= hi)
            && c.min_pct.is_none_or(|lo| mean_pct >= lo);
        out.push(ClaimResult {
            claim: c.clone(),
            deltas,
            mean_pct,
            pass,
        });
    }
    Ok(out)
}

/// Renders the report table (deterministic, file order).
pub fn report(results: &[ClaimResult]) -> String {
    let mut t = sched_metrics::Table::new(&[
        "claim", "paper", "metric", "policy", "window %", "mean Δ%", "seeds", "verdict",
    ]);
    for r in results {
        let c = &r.claim;
        let window = match (c.min_pct, c.max_pct) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            (None, Some(hi)) => format!("≤ {hi}"),
            (Some(lo), None) => format!("≥ {lo}"),
            (None, None) => unreachable!("parser requires a bound"),
        };
        t.row(vec![
            c.name.clone(),
            c.source.clone(),
            c.metric.label().to_string(),
            format!("{}", MaxSdLabel(c.maxsd)),
            window,
            format!("{:+.2}", r.mean_pct),
            format!("{}", c.seeds.len()),
            if r.pass { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    t.render()
}

struct MaxSdLabel(MaxSdDecl);

impl std::fmt::Display for MaxSdLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0 {
            MaxSdDecl::Value(v) => write!(f, "MAXSD {v}"),
            MaxSdDecl::Infinite => write!(f, "MAXSD inf"),
            MaxSdDecl::Dyn => write!(f, "DynAVGSD"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = "
[defaults]
seeds = [1, 2]

[claim]
name = demo
workload = cirne
metric = slowdown
max_pct = 0
";

    #[test]
    fn parses_minimal_file() {
        let claims = parse_expectations(MINIMAL).unwrap();
        assert_eq!(claims.len(), 1);
        let c = &claims[0];
        assert_eq!(c.name, "demo");
        assert_eq!(c.seeds, vec![1, 2]);
        assert_eq!(c.metric, Metric::Slowdown);
        assert_eq!(c.max_pct, Some(0.0));
        assert_eq!(c.min_pct, None);
        assert_eq!(c.maxsd, MaxSdDecl::Dyn);
    }

    #[test]
    fn rejects_claim_without_bounds() {
        let text = "
[claim]
name = x
workload = cirne
metric = slowdown
";
        let err = parse_expectations(text).unwrap_err();
        assert!(err.msg.contains("max_pct"), "{err}");
    }

    #[test]
    fn rejects_inverted_window_and_duplicates() {
        let text = "
[claim]
name = x
workload = cirne
metric = slowdown
min_pct = 0
max_pct = -10
";
        assert!(parse_expectations(text).is_err());
        let dup = "
[claim]
name = x
workload = cirne
metric = slowdown
max_pct = 0

[claim]
name = x
workload = cirne
metric = energy
max_pct = 0
";
        let err = parse_expectations(dup).unwrap_err();
        assert!(err.msg.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_with_line() {
        let text = "
[claim]
name = x
workload = cirne
metric = slowdown
max_pct = 0
typo = 1
";
        let err = parse_expectations(text).unwrap_err();
        assert_eq!(err.line, 7);
        assert!(err.msg.contains("typo"), "{err}");
    }

    #[test]
    fn tenant_claim_rules() {
        let ok = "
[claim]
name = t
workload = ricc
tenants = 3
tenant_skew = 1.5
quota_fraction = 0.5
tenant_queue = fair_share
metric = tenant_share
max_pct = 10
";
        let claims = parse_expectations(ok).unwrap();
        let t = claims[0].tenants.as_ref().unwrap();
        assert_eq!((t.count, t.skew, t.quota_fraction), (3, 1.5, 0.5));
        assert_eq!(t.queue, TenantQueueDecl::FairShare);
        assert_eq!(claims[0].metric, Metric::TenantShare);
        // Tenanted and untenanted claims never dedup onto the same run.
        assert_ne!(
            key_for(&claims[0], 1, true).tenancy,
            "-".to_string()
        );

        let orphan = "
[claim]
name = t
workload = ricc
tenant_skew = 1
metric = slowdown
max_pct = 0
";
        let err = parse_expectations(orphan).unwrap_err();
        assert!(err.msg.contains("requires a `tenants` count"), "{err}");

        let real_run = "
[claim]
name = t
workload = real_run
tenants = 2
metric = slowdown
max_pct = 0
";
        let err = parse_expectations(real_run).unwrap_err();
        assert!(err.msg.contains("synthetic"), "{err}");
    }

    #[test]
    fn evaluate_checks_sign_claims_end_to_end() {
        // Tiny scale: a directional slowdown claim must pass, an absurd
        // "SD makes slowdown 10× worse" claim must fail.
        let text = "
[defaults]
seeds = [42]

[claim]
name = sd-helps
workload = cirne
scale = 0.05
metric = slowdown
max_pct = 0

[claim]
name = sd-ruins
workload = cirne
scale = 0.05
metric = slowdown
min_pct = 900
";
        let claims = parse_expectations(text).unwrap();
        let results = evaluate(&claims, Some(2)).unwrap();
        assert!(results[0].pass, "mean {:+.2}", results[0].mean_pct);
        assert!(!results[1].pass);
        // Dedup: both claims share the same runs (3 unique: static + sd… the
        // two claims differ only in bounds, so 2 unique runs total).
        let rep = report(&results);
        assert!(rep.contains("PASS") && rep.contains("FAIL"));
    }

    #[test]
    fn ships_expectation_file_parses() {
        let text = include_str!("../../../scenarios/expectations.exp");
        let claims = parse_expectations(text).unwrap();
        assert!(claims.len() >= 10, "paper file has {} claims", claims.len());
        // Every paper workload is covered.
        for w in ["cirne", "cirne_ideal", "ricc", "curie", "real_run"] {
            let covered = claims.iter().any(|c| {
                key_for(c, 1, true).workload == w
            });
            assert!(covered, "no claim covers workload {w}");
        }
    }
}
