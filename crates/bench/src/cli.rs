//! Minimal command-line parsing for the experiment binaries.
//!
//! Flags (all optional):
//! * `--scale <f64>` — workload/system scale (default: per-workload CI size)
//! * `--full` — paper-scale run (`scale = 1.0`)
//! * `--seed <u64>` — RNG seed (default 42)
//! * `--swf <path>` — replay a genuine SWF trace instead of the synthetic
//!   generator (Workloads 3/4, see DESIGN.md §4)
//! * `--threads <n>` — cap the sweep's worker threads (default: all cores)
//! * `--out <path>` — write machine-readable output (JSON/CSV) to a file
//! * `--backend <profile|slottree>` — availability backend (DESIGN.md §13)
//!
//! Unknown flags are reported as errors (exit code 2), never ignored;
//! `--help`/`-h` prints the usage text and exits 0.

/// Usage text shared by every binary (binaries with extra flags print their
/// own header above this).
pub const USAGE: &str = "common flags:
  --scale <f64>    workload/system scale (default: per-workload CI size)
  --full           paper-scale run (scale = 1.0)
  --seed <u64>     RNG seed (default 42)
  --swf <path>     replay a genuine SWF trace
  --threads <n>    cap parallel sweep threads (default: all cores)
  --out <path>     write JSON (.json) or CSV output to this file
  --backend <b>    availability backend: profile | slottree (results are
                   bit-identical; only scheduler wall time moves)
  --help, -h       show this help";

/// How parsing can terminate without yielding arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help`/`-h` was given: print usage, exit 0.
    Help,
    /// A real parse error: print message + usage, exit 2.
    Bad(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "{USAGE}"),
            CliError::Bad(msg) => write!(f, "{msg}"),
        }
    }
}

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CliArgs {
    pub scale: Option<f64>,
    pub full: bool,
    /// `--seed` as given; `None` when absent (see [`CliArgs::effective_seed`]).
    pub seed: Option<u64>,
    pub swf: Option<String>,
    /// Worker-thread cap for parallel sweeps (None = machine parallelism).
    pub threads: Option<usize>,
    /// Output file for machine-readable results (JSON/CSV).
    pub out: Option<String>,
    /// Availability backend override (`--backend profile|slottree`).
    pub backend: Option<slurm_sim::AvailBackendKind>,
}

impl CliArgs {
    /// Parses from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<CliArgs, CliError> {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .ok_or_else(|| CliError::Bad(format!("{flag} needs a value")))
            };
            match a.as_str() {
                "--full" => out.full = true,
                "--scale" => {
                    let v = value("--scale")?;
                    out.scale =
                        Some(v.parse().map_err(|_| CliError::Bad(format!("bad scale: {v}")))?);
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed =
                        Some(v.parse().map_err(|_| CliError::Bad(format!("bad seed: {v}")))?);
                }
                "--threads" => {
                    let v = value("--threads")?;
                    let n: usize =
                        v.parse().map_err(|_| CliError::Bad(format!("bad thread count: {v}")))?;
                    if n == 0 {
                        return Err(CliError::Bad("--threads must be at least 1".into()));
                    }
                    out.threads = Some(n);
                }
                "--swf" => out.swf = Some(value("--swf")?),
                "--out" => out.out = Some(value("--out")?),
                "--backend" => {
                    let v = value("--backend")?;
                    out.backend = Some(slurm_sim::AvailBackendKind::parse(&v).ok_or_else(
                        || CliError::Bad(format!("bad backend: {v} (profile|slottree)")),
                    )?);
                }
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::Bad(format!("unknown flag: {other}"))),
            }
        }
        Ok(out)
    }

    /// Parses the real process arguments; prints usage and exits 0 on
    /// `--help`, prints the error + usage and exits 2 on anything malformed.
    pub fn from_env() -> CliArgs {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(CliError::Help) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(CliError::Bad(msg)) => {
                eprintln!("{msg}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// The effective scale: `--full` → 1.0, else `--scale`, else the
    /// workload default.
    pub fn effective_scale(&self, default: f64) -> f64 {
        if self.full {
            1.0
        } else {
            self.scale.unwrap_or(default)
        }
    }

    /// The effective RNG seed (default 42). Kept as an `Option` internally
    /// so callers can distinguish an explicit `--seed 42` from the default.
    pub fn effective_seed(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// The first common flag this binary does not implement, if any.
    /// `supported` lists the optional flags it honours (`"--out"`,
    /// `"--threads"`, `"--swf"`); `--scale`/`--full`/`--seed` are
    /// universal and never rejected.
    pub fn unsupported(&self, supported: &[&str]) -> Option<&'static str> {
        if self.out.is_some() && !supported.contains(&"--out") {
            return Some("--out");
        }
        if self.threads.is_some() && !supported.contains(&"--threads") {
            return Some("--threads");
        }
        if self.swf.is_some() && !supported.contains(&"--swf") {
            return Some("--swf");
        }
        if self.backend.is_some() && !supported.contains(&"--backend") {
            return Some("--backend");
        }
        None
    }

    /// Exits with code 2 if a flag this binary does not implement was
    /// given — accepted-but-ignored flags would silently lie to the user.
    pub fn require_supported(&self, bin: &str, supported: &[&str]) {
        if let Some(flag) = self.unsupported(supported) {
            eprintln!("{bin} does not support {flag}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, CliError> {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, CliArgs::default());
        assert_eq!(a.effective_scale(0.1), 0.1);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--scale", "0.5", "--seed", "7", "--swf", "x.swf", "--threads", "3", "--out",
            "res.json",
        ])
        .unwrap();
        assert_eq!(a.scale, Some(0.5));
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.effective_seed(), 7);
        assert_eq!(a.swf.as_deref(), Some("x.swf"));
        assert_eq!(a.threads, Some(3));
        assert_eq!(a.out.as_deref(), Some("res.json"));
        assert_eq!(a.effective_scale(0.1), 0.5);
    }

    #[test]
    fn full_overrides_scale() {
        let a = parse(&["--scale", "0.5", "--full"]).unwrap();
        assert_eq!(a.effective_scale(0.1), 1.0);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(parse(&["--scale"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--scale", "abc"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--bogus"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--threads", "0"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--threads", "x"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn explicit_default_seed_is_distinguishable() {
        assert_eq!(parse(&[]).unwrap().seed, None);
        assert_eq!(parse(&[]).unwrap().effective_seed(), 42);
        assert_eq!(parse(&["--seed", "42"]).unwrap().seed, Some(42));
    }

    #[test]
    fn unsupported_flags_are_detected() {
        let a = parse(&["--out", "x.json", "--threads", "2"]).unwrap();
        assert_eq!(a.unsupported(&[]), Some("--out"));
        assert_eq!(a.unsupported(&["--out"]), Some("--threads"));
        assert_eq!(a.unsupported(&["--out", "--threads"]), None);
        let b = parse(&["--swf", "t.swf"]).unwrap();
        assert_eq!(b.unsupported(&[]), Some("--swf"));
        assert_eq!(b.unsupported(&["--swf"]), None);
        let c = parse(&["--backend", "slottree"]).unwrap();
        assert_eq!(c.unsupported(&[]), Some("--backend"));
        assert_eq!(c.unsupported(&["--backend"]), None);
        assert_eq!(parse(&["--seed", "1"]).unwrap().unsupported(&[]), None);
    }

    #[test]
    fn backend_flag_parses_and_validates() {
        use slurm_sim::AvailBackendKind;
        assert_eq!(parse(&[]).unwrap().backend, None);
        assert_eq!(
            parse(&["--backend", "profile"]).unwrap().backend,
            Some(AvailBackendKind::Profile)
        );
        assert_eq!(
            parse(&["--backend", "slottree"]).unwrap().backend,
            Some(AvailBackendKind::SlotTree)
        );
        assert!(matches!(parse(&["--backend", "btree"]), Err(CliError::Bad(_))));
        assert!(matches!(parse(&["--backend"]), Err(CliError::Bad(_))));
    }

    #[test]
    fn help_is_distinguished_from_errors() {
        assert_eq!(parse(&["--help"]), Err(CliError::Help));
        assert_eq!(parse(&["-h"]), Err(CliError::Help));
        assert!(CliError::Help.to_string().contains("--threads"));
        assert_eq!(CliError::Bad("x".into()).to_string(), "x");
    }
}
