//! Minimal command-line parsing for the experiment binaries.
//!
//! Flags (all optional):
//! * `--scale <f64>` — workload/system scale (default: per-workload CI size)
//! * `--full` — paper-scale run (`scale = 1.0`)
//! * `--seed <u64>` — RNG seed (default 42)
//! * `--swf <path>` — replay a genuine SWF trace instead of the synthetic
//!   generator (Workloads 3/4, see DESIGN.md §4)

/// Parsed command-line arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct CliArgs {
    pub scale: Option<f64>,
    pub full: bool,
    pub seed: u64,
    pub swf: Option<String>,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            scale: None,
            full: false,
            seed: 42,
            swf: None,
        }
    }
}

impl CliArgs {
    /// Parses from an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<CliArgs, String> {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => out.full = true,
                "--scale" => {
                    let v = it.next().ok_or("--scale needs a value")?;
                    out.scale = Some(v.parse().map_err(|_| format!("bad scale: {v}"))?);
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
                }
                "--swf" => {
                    out.swf = Some(it.next().ok_or("--swf needs a path")?);
                }
                "--help" | "-h" => {
                    return Err("usage: [--scale F] [--full] [--seed N] [--swf FILE]".into())
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(out)
    }

    /// Parses the real process arguments, exiting with a message on error.
    pub fn from_env() -> CliArgs {
        match Self::parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// The effective scale: `--full` → 1.0, else `--scale`, else the
    /// workload default.
    pub fn effective_scale(&self, default: f64) -> f64 {
        if self.full {
            1.0
        } else {
            self.scale.unwrap_or(default)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, String> {
        CliArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, CliArgs::default());
        assert_eq!(a.effective_scale(0.1), 0.1);
    }

    #[test]
    fn all_flags() {
        let a = parse(&["--scale", "0.5", "--seed", "7", "--swf", "x.swf"]).unwrap();
        assert_eq!(a.scale, Some(0.5));
        assert_eq!(a.seed, 7);
        assert_eq!(a.swf.as_deref(), Some("x.swf"));
        assert_eq!(a.effective_scale(0.1), 0.5);
    }

    #[test]
    fn full_overrides_scale() {
        let a = parse(&["--scale", "0.5", "--full"]).unwrap();
        assert_eq!(a.effective_scale(0.1), 1.0);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }
}
