//! Benchmark: mate selection (Eqs. 1–3) — invoked once per malleable trial.

use cluster::JobId;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sd_policy::mates::{pick_mates, Candidate};
use sd_policy::SdPolicyConfig;
use simkit::DetRng;

fn candidates(n: usize, rng: &mut DetRng) -> Vec<Candidate> {
    let mut v: Vec<Candidate> = (0..n)
        .map(|i| Candidate {
            id: JobId(i as u64 + 1),
            weight: rng.range_u64(1, 64) as u32,
            penalty: rng.range_f64(1.0, 20.0),
        })
        .collect();
    v.sort_by(|a, b| a.penalty.partial_cmp(&b.penalty).unwrap());
    v
}

fn bench_pick_mates(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_mates");
    for &n in &[16usize, 64, 256] {
        let mut rng = DetRng::new(6);
        let cands = candidates(n, &mut rng);
        let cfg = SdPolicyConfig::default(); // m = 2 (paper optimum)
        group.bench_with_input(BenchmarkId::new("m2", n), &cands, |b, cands| {
            let mut target = 1u32;
            b.iter(|| {
                target = target % 96 + 1;
                black_box(pick_mates(cands, target, 0, &cfg))
            })
        });
        let cfg3 = SdPolicyConfig {
            max_mates: 3,
            ..SdPolicyConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("m3", n), &cands, |b, cands| {
            let mut target = 1u32;
            b.iter(|| {
                target = target % 96 + 1;
                black_box(pick_mates(cands, target, 0, &cfg3))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pick_mates
}
criterion_main!(benches);
