//! Benchmark: whole-simulation throughput — static backfill vs SD-Policy on
//! the same trace, the number every other cost rolls up into.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sd_bench::{run_config, ModelKind, PolicyKind, RunConfig};
use sd_policy::MaxSlowdown;
use workload::PaperWorkload;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("static_w3_2000_jobs", |b| {
        let cfg = RunConfig::new(PaperWorkload::W3Ricc, PolicyKind::StaticBackfill)
            .with_scale(0.2)
            .with_model(ModelKind::Ideal);
        b.iter(|| black_box(run_config(&cfg).outcomes.len()))
    });
    group.bench_function("sd_w3_2000_jobs", |b| {
        let cfg = RunConfig::new(
            PaperWorkload::W3Ricc,
            PolicyKind::Sd(MaxSlowdown::DynAvg),
        )
        .with_scale(0.2)
        .with_model(ModelKind::Ideal);
        b.iter(|| black_box(run_config(&cfg).outcomes.len()))
    });
    group.bench_function("sd_w4_3970_jobs", |b| {
        let cfg = RunConfig::new(
            PaperWorkload::W4Curie,
            PolicyKind::Sd(MaxSlowdown::Static(10.0)),
        )
        .with_scale(0.02)
        .with_model(ModelKind::Ideal);
        b.iter(|| black_box(run_config(&cfg).outcomes.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
