//! Benchmark: workload generation (trace synthesis must stay negligible
//! next to simulation time, even at the 198 K-job Curie scale).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use workload::PaperWorkload;

fn bench_generation(c: &mut Criterion) {
    c.bench_function("generate/w1_cirne_1000_jobs", |b| {
        b.iter(|| black_box(PaperWorkload::W1Cirne.generate(9, 0.2)))
    });
    c.bench_function("generate/w4_curie_3970_jobs", |b| {
        b.iter(|| black_box(PaperWorkload::W4Curie.generate(9, 0.02)))
    });
    c.bench_function("generate/w5_realrun_2000_jobs_with_apps", |b| {
        b.iter(|| black_box(PaperWorkload::generate_apps(9)))
    });
}

fn bench_swf_io(c: &mut Criterion) {
    let trace = PaperWorkload::W3Ricc.generate(9, 0.2);
    let text = swf::write_string(&trace);
    c.bench_function("swf/write_2000_jobs", |b| {
        b.iter(|| black_box(swf::write_string(&trace)))
    });
    c.bench_function("swf/parse_2000_jobs", |b| {
        b.iter(|| black_box(swf::parse_str(&text).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generation, bench_swf_io
}
criterion_main!(benches);
