//! Benchmark: availability-profile construction and backfill planning —
//! the per-pass cost that bounds simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simkit::{DetRng, SimTime};
use slurm_sim::{Profile, ReleaseMap};

fn release_map(nodes: u32, busy: u32, rng: &mut DetRng) -> ReleaseMap {
    let mut rm = ReleaseMap::new(nodes);
    for n in 0..busy {
        rm.set_release(
            cluster::NodeId(n),
            Some(SimTime(rng.range_u64(1, 500_000))),
        );
    }
    rm
}

fn bench_profile_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_build");
    for &nodes in &[256u32, 1024, 5040] {
        let mut rng = DetRng::new(3);
        let rm = release_map(nodes, nodes * 3 / 4, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &rm, |b, rm| {
            b.iter(|| black_box(Profile::build(SimTime(0), nodes / 4, rm)))
        });
    }
    group.finish();
}

fn bench_earliest_start(c: &mut Criterion) {
    let mut rng = DetRng::new(4);
    let rm = release_map(5040, 4000, &mut rng);
    let profile = Profile::build(SimTime(0), 1040, &rm);
    c.bench_function("earliest_start/5040_nodes", |b| {
        let mut n = 1u32;
        b.iter(|| {
            n = n % 2000 + 1;
            black_box(profile.earliest_start(n, 36_000, SimTime(0)))
        })
    });
}

fn bench_conservative_pass(c: &mut Criterion) {
    // A full planning pass: 100 queued jobs against a loaded 1024-node
    // machine, each reserving in the profile (the conservative mode's cost).
    let mut rng = DetRng::new(5);
    let rm = release_map(1024, 900, &mut rng);
    let jobs: Vec<(u32, u64)> = (0..100)
        .map(|_| (rng.range_u64(1, 64) as u32, rng.range_u64(300, 86_400)))
        .collect();
    c.bench_function("conservative_pass/100_jobs_1024_nodes", |b| {
        b.iter(|| {
            let mut p = Profile::build(SimTime(0), 124, &rm);
            for &(nodes, dur) in &jobs {
                let t = p.earliest_start(nodes, dur, SimTime(0));
                if t != SimTime::MAX {
                    p.reserve(t, dur, nodes);
                }
            }
            black_box(p.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_profile_build, bench_earliest_start, bench_conservative_pass
}
criterion_main!(benches);
