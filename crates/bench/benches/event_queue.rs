//! Microbenchmark: the event queue, the simulator's innermost structure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use simkit::{DetRng, EventQueue, SimTime};

fn bench_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut rng = DetRng::new(1);
        let times: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1_000_000)).collect();
        group.bench_with_input(BenchmarkId::new("push_pop", n), &times, |b, times| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(times.len());
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime(t), i as u32);
                }
                let mut sum = 0u64;
                while let Some(ev) = q.pop() {
                    sum += ev.time.secs();
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_cancel_heavy(c: &mut Criterion) {
    // The malleable simulator cancels ~2 end events per reconfiguration;
    // model a 50 % cancellation rate.
    let mut rng = DetRng::new(2);
    let times: Vec<u64> = (0..10_000).map(|_| rng.range_u64(0, 1_000_000)).collect();
    c.bench_function("event_queue/cancel_50pct", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(times.len());
            let tokens: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| q.push(SimTime(t), i as u32))
                .collect();
            for (i, tok) in tokens.iter().enumerate() {
                if i % 2 == 0 {
                    q.cancel(*tok);
                }
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_push_pop, bench_cancel_heavy
}
criterion_main!(benches);
