//! Benchmark: runtime-model evaluation (Eqs. 5/6 + app model) — computed at
//! every reconfiguration of every running job.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sd_policy::models::{ideal_wall_time, worst_case_wall_time, Slot};
use simkit::DetRng;
use slurm_sim::rate::{AppAwareModel, IdealModel, RateInputs, RateModel, WorstCaseModel};

fn bench_rate_models(c: &mut Criterion) {
    let mut rng = DetRng::new(7);
    let cores: Vec<u32> = (0..128).map(|_| rng.range_u64(1, 48) as u32).collect();
    let inputs = RateInputs {
        cores: &cores,
        full_cores: 48,
        app: Some(workload::AppId::CoreNeuron),
        neighbour_mem: 0.6,
    };
    c.bench_function("rate/ideal_128_nodes", |b| {
        b.iter(|| black_box(IdealModel.rate(&inputs)))
    });
    c.bench_function("rate/worst_case_128_nodes", |b| {
        b.iter(|| black_box(WorstCaseModel.rate(&inputs)))
    });
    c.bench_function("rate/app_aware_128_nodes", |b| {
        b.iter(|| black_box(AppAwareModel.rate(&inputs)))
    });
}

fn bench_closed_forms(c: &mut Criterion) {
    let mut rng = DetRng::new(8);
    let slots: Vec<Slot> = (0..32)
        .map(|_| Slot {
            cpus_per_node: (0..16).map(|_| rng.range_u64(1, 48) as u32).collect(),
            static_work: rng.range_f64(10.0, 10_000.0),
        })
        .collect();
    c.bench_function("closed_form/eq5_32_slots", |b| {
        b.iter(|| black_box(ideal_wall_time(&slots, 48)))
    });
    c.bench_function("closed_form/eq6_32_slots", |b| {
        b.iter(|| black_box(worst_case_wall_time(&slots, 48)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_rate_models, bench_closed_forms
}
criterion_main!(benches);
