//! Generic synthetic trace model.
//!
//! All three trace families the paper uses (the Cirne–Berman model for
//! Workloads 1/2/5 and the statistically matched RICC / CEA-Curie synthetics
//! for Workloads 3/4) share the same generative skeleton:
//!
//! * arrivals: non-homogeneous Poisson (ANL daily pattern) plus user
//!   *campaign batches* (a fraction of submissions arrive as bursts of
//!   similar jobs — what produces the slowdown spikes of the paper's Fig. 7),
//! * sizes: staged log-uniform over node counts with a power-of-two
//!   preference (Cirne's observation),
//! * runtimes: log-normal with a mild positive size correlation, clamped,
//! * estimates: exact (`Cirne_ideal`) or user-style over-estimates rounded
//!   up to common wall-time limits.
//!
//! Presets live in [`crate::cirne`], [`crate::ricc`] and [`crate::curie`].

use crate::arrivals::ArrivalModel;
use crate::dist::{round_up_to_common_limit, LogNormal, Sampler};
use simkit::DetRng;
use swf::{SwfHeader, SwfJob, Trace};

/// How requested (user-estimated) wall times relate to real runtimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimateModel {
    /// `req_time == run_time` (the paper's Workload 2, "Cirne_ideal").
    Exact,
    /// `req_time = round_up(run_time × f)`, `f` log-uniform in
    /// `[1, max_factor]` — the classic user over-estimation pattern.
    UserFactor { max_factor: f64 },
}

/// Tenant population mix: job submitters drawn from `tenants` tenant ids
/// (1..=N) with Zipf(`skew`) popularity — a few heavy tenants and a long
/// tail, the shape shared accounting databases show in practice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantMix {
    /// Number of distinct tenants; ids are `1..=tenants`.
    pub tenants: u32,
    /// Zipf exponent: 0 = uniform popularity, larger = more skewed.
    pub skew: f64,
}

/// One size class: with `weight`, draw node counts log-uniformly in
/// `[lo, hi]` nodes.
#[derive(Debug, Clone, Copy)]
pub struct SizeStage {
    pub weight: f64,
    pub lo: u32,
    pub hi: u32,
}

/// The generative model; see module docs.
#[derive(Debug, Clone)]
pub struct SyntheticTraceModel {
    pub name: &'static str,
    pub n_jobs: usize,
    pub system_nodes: u32,
    pub cores_per_node: u32,
    pub arrivals: ArrivalModel,
    /// Size classes (weights need not sum to 1; they are normalised).
    pub stages: Vec<SizeStage>,
    /// Probability a parallel job size is rounded to a power of two.
    pub pow2_preference: f64,
    /// Runtime distribution (seconds) of *production* jobs, before size
    /// correlation and clamping.
    pub runtime: LogNormal,
    /// Fraction of jobs that are short debug/test runs — production logs are
    /// strongly bimodal, and this mass of tiny jobs is what produces the
    /// thousands-scale average slowdowns of the paper's Table 1.
    pub short_fraction: f64,
    /// Log-uniform runtime range of the short-job mode, seconds.
    pub short_range: (f64, f64),
    /// Runtime multiplier exponent on node count: `rt × nodes^alpha`.
    pub size_runtime_alpha: f64,
    pub runtime_min: u64,
    pub runtime_max: u64,
    pub estimates: EstimateModel,
    /// Probability a submission starts a campaign batch.
    pub batch_p: f64,
    /// Mean extra jobs in a batch (geometric tail).
    pub batch_mean: f64,
    /// Optional tenant identity mix. `None` keeps the legacy synthetic user
    /// stamp (`id % 97`) byte-identical; `Some` draws each job's SWF user
    /// from an independent RNG stream, leaving every other field untouched.
    pub tenant_mix: Option<TenantMix>,
}

impl SyntheticTraceModel {
    // ----- builder-style knobs (used by the scenario engine) -----

    /// Overrides the job count.
    pub fn with_jobs(mut self, n_jobs: usize) -> Self {
        self.n_jobs = n_jobs.max(1);
        self
    }

    /// Replaces the whole arrival process.
    pub fn with_arrivals(mut self, arrivals: ArrivalModel) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Overrides only the mean interarrival (seconds), keeping the pattern.
    pub fn with_mean_interarrival(mut self, secs: f64) -> Self {
        self.arrivals.mean_interarrival = secs.max(1e-9);
        self
    }

    /// Overrides the campaign-batch behaviour (`batch_p`, `batch_mean`).
    pub fn with_batching(mut self, batch_p: f64, batch_mean: f64) -> Self {
        self.batch_p = batch_p.clamp(0.0, 1.0);
        self.batch_mean = batch_mean.max(0.0);
        self
    }

    /// Overrides the estimate model.
    pub fn with_estimates(mut self, estimates: EstimateModel) -> Self {
        self.estimates = estimates;
        self
    }

    /// Resizes the machine; size stages are clamped to it at sampling time.
    pub fn with_system_nodes(mut self, nodes: u32) -> Self {
        self.system_nodes = nodes.max(1);
        self
    }

    /// Stamps jobs with a Zipf-skewed tenant mix (see [`TenantMix`]).
    pub fn with_tenant_mix(mut self, tenants: u32, skew: f64) -> Self {
        self.tenant_mix = Some(TenantMix {
            tenants: tenants.max(1),
            skew: skew.max(0.0),
        });
        self
    }

    /// Draws a node count according to the staged size model.
    fn sample_nodes(&self, rng: &mut DetRng) -> u32 {
        let weights: Vec<f64> = self.stages.iter().map(|s| s.weight).collect();
        let stage = &self.stages[rng.weighted_index(&weights)];
        let lo = stage.lo.max(1) as f64;
        let raw = crate::dist::LogUniform {
            lo,
            hi: (stage.hi as f64).max(lo),
        }
        .sample(rng);
        let mut nodes = raw.round().max(1.0) as u32;
        if nodes > 2 && rng.chance(self.pow2_preference) {
            // Round to the nearest power of two (Cirne's observed preference).
            let lg = (nodes as f64).log2().round() as u32;
            nodes = 1u32 << lg.min(30);
        }
        nodes.clamp(1, self.max_job_nodes())
    }

    /// Largest node count any stage can produce.
    pub fn max_job_nodes(&self) -> u32 {
        self.stages
            .iter()
            .map(|s| s.hi)
            .max()
            .unwrap_or(1)
            .min(self.system_nodes)
    }

    fn sample_runtime(&self, nodes: u32, rng: &mut DetRng) -> u64 {
        if rng.chance(self.short_fraction) {
            let rt = crate::dist::LogUniform {
                lo: self.short_range.0.max(1.0),
                hi: self.short_range.1.max(self.short_range.0.max(1.0)),
            }
            .sample(rng);
            return (rt as u64).clamp(self.runtime_min, self.runtime_max);
        }
        let base = self.runtime.sample(rng);
        let rt = base * (nodes as f64).powf(self.size_runtime_alpha);
        (rt as u64).clamp(self.runtime_min, self.runtime_max)
    }

    fn sample_estimate(&self, runtime: u64, rng: &mut DetRng) -> u64 {
        match self.estimates {
            EstimateModel::Exact => runtime,
            EstimateModel::UserFactor { max_factor } => {
                let f = crate::dist::LogUniform {
                    lo: 1.0,
                    hi: max_factor.max(1.0),
                }
                .sample(rng);
                round_up_to_common_limit(runtime as f64 * f).max(runtime)
            }
        }
    }

    /// Extra jobs in a campaign batch: geometric with the configured mean.
    fn sample_batch_extra(&self, rng: &mut DetRng) -> usize {
        if self.batch_mean <= 0.0 {
            return 0;
        }
        let p = 1.0 / (1.0 + self.batch_mean);
        let mut k = 0usize;
        while !rng.chance(p) && k < 200 {
            k += 1;
        }
        k
    }

    /// Generates the full trace. Deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let root = DetRng::new(seed);
        let mut arr_rng = root.fork(1);
        let mut size_rng = root.fork(2);
        let mut rt_rng = root.fork(3);
        let mut est_rng = root.fork(4);
        let mut batch_rng = root.fork(5);
        // Stream 6 is tenant-only: enabling a mix cannot perturb arrivals,
        // sizes or runtimes (the untenanted trace stays byte-identical).
        let mut tenant_rng = root.fork(6);
        let tenant_weights: Option<Vec<f64>> = self.tenant_mix.map(|m| {
            (1..=m.tenants).map(|k| f64::from(k).powf(-m.skew)).collect()
        });

        let mut jobs: Vec<SwfJob> = Vec::with_capacity(self.n_jobs);
        // Batches consume several jobs per submission event, so submission
        // events must be spaced further apart to keep the configured
        // *per-job* mean interarrival (and hence the trace's span).
        let mean_batch = 1.0 + self.batch_p * self.batch_mean;
        let mut point_arrivals = self.arrivals.clone();
        point_arrivals.mean_interarrival = self.arrivals.mean_interarrival * mean_batch;
        let arrivals = point_arrivals.generate(self.n_jobs, 0, &mut arr_rng);
        let mut arrival_iter = arrivals.into_iter();
        let mut more_arrivals = |rng: &mut DetRng, last: u64| -> u64 {
            arrival_iter.next().unwrap_or_else(|| {
                last + (rng.range_f64(0.5, 1.5) * point_arrivals.mean_interarrival) as u64
            })
        };
        let mut last_t = 0u64;
        while jobs.len() < self.n_jobs {
            let t = more_arrivals(&mut batch_rng, last_t);
            last_t = t;
            let batch = if batch_rng.chance(self.batch_p) {
                1 + self.sample_batch_extra(&mut batch_rng)
            } else {
                1
            };
            // A campaign shares a size/runtime "shape" with per-job jitter.
            let proto_nodes = self.sample_nodes(&mut size_rng);
            let proto_rt = self.sample_runtime(proto_nodes, &mut rt_rng);
            for b in 0..batch {
                if jobs.len() >= self.n_jobs {
                    break;
                }
                let (nodes, rt) = if b == 0 {
                    (proto_nodes, proto_rt)
                } else {
                    let jitter = rt_rng.range_f64(0.7, 1.3);
                    (
                        proto_nodes,
                        ((proto_rt as f64 * jitter) as u64)
                            .clamp(self.runtime_min, self.runtime_max),
                    )
                };
                let procs = nodes as u64 * self.cores_per_node as u64;
                let req_time = self.sample_estimate(rt, &mut est_rng);
                // Batched submissions arrive a few seconds apart.
                let submit = t + b as u64;
                let id = jobs.len() as u64 + 1;
                let mut job = SwfJob::for_simulation(id, submit, rt, procs, req_time);
                match &tenant_weights {
                    Some(w) => {
                        job.user = (tenant_rng.weighted_index(w) + 1) as i64;
                        job.group = 0;
                    }
                    None => job.user = (id % 97) as i64, // legacy synthetic user mix
                }
                jobs.push(job);
            }
        }
        jobs.sort_by_key(|j| (j.submit, j.job_id));
        for (i, j) in jobs.iter_mut().enumerate() {
            j.job_id = i as u64 + 1;
        }

        let mut header = SwfHeader::new();
        header.set("Computer", self.name);
        header.set("MaxNodes", self.system_nodes);
        header.set(
            "MaxProcs",
            self.system_nodes as u64 * self.cores_per_node as u64,
        );
        header.set("MaxJobs", jobs.len());
        header.set("Note", "synthetic trace generated by sd-sched workload models");
        Trace::new(header, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> SyntheticTraceModel {
        SyntheticTraceModel {
            name: "tiny",
            n_jobs: 500,
            system_nodes: 64,
            cores_per_node: 8,
            arrivals: ArrivalModel::uniform(100.0),
            stages: vec![
                SizeStage {
                    weight: 0.8,
                    lo: 1,
                    hi: 8,
                },
                SizeStage {
                    weight: 0.2,
                    lo: 8,
                    hi: 32,
                },
            ],
            pow2_preference: 0.5,
            runtime: LogNormal::from_median(600.0, 1.0),
            short_fraction: 0.2,
            short_range: (10.0, 60.0),
            size_runtime_alpha: 0.1,
            runtime_min: 10,
            runtime_max: 86_400,
            estimates: EstimateModel::UserFactor { max_factor: 5.0 },
            batch_p: 0.2,
            batch_mean: 3.0,
            tenant_mix: None,
        }
    }

    #[test]
    fn generates_requested_job_count() {
        let t = tiny_model().generate(42);
        assert_eq!(t.len(), 500);
        assert_eq!(t.header.max_nodes(), Some(64));
        assert_eq!(t.header.max_procs(), Some(512));
    }

    #[test]
    fn jobs_sorted_and_renumbered() {
        let t = tiny_model().generate(42);
        assert!(t.jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
        for (i, j) in t.jobs.iter().enumerate() {
            assert_eq!(j.job_id, i as u64 + 1);
        }
    }

    #[test]
    fn sizes_within_bounds_and_whole_nodes() {
        let m = tiny_model();
        let t = m.generate(1);
        for j in &t.jobs {
            let procs = j.procs().unwrap();
            assert_eq!(procs % 8, 0, "whole-node proc counts");
            let nodes = procs / 8;
            assert!((1..=32).contains(&nodes), "nodes {nodes}");
        }
    }

    #[test]
    fn runtimes_clamped() {
        let t = tiny_model().generate(2);
        for j in &t.jobs {
            let rt = j.runtime().unwrap();
            assert!((10..=86_400).contains(&rt));
            assert!(j.requested_time().unwrap() >= rt, "estimates never low");
        }
    }

    #[test]
    fn exact_estimates_mode() {
        let mut m = tiny_model();
        m.estimates = EstimateModel::Exact;
        let t = m.generate(3);
        for j in &t.jobs {
            assert_eq!(j.req_time, j.run_time);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let m = tiny_model();
        assert_eq!(m.generate(9).jobs, m.generate(9).jobs);
        assert_ne!(m.generate(9).jobs, m.generate(10).jobs);
    }

    #[test]
    fn batches_create_simultaneous_submissions() {
        let t = tiny_model().generate(4);
        // With batch_p = 0.2 and mean 3 extra jobs, clusters of nearby
        // submissions must exist.
        let close = t
            .jobs
            .windows(2)
            .filter(|w| w[1].submit - w[0].submit <= 1)
            .count();
        assert!(close > 30, "campaign batches present ({close})");
    }

    #[test]
    fn builder_knobs_apply() {
        let m = tiny_model()
            .with_jobs(123)
            .with_mean_interarrival(17.0)
            .with_batching(0.9, 12.0)
            .with_estimates(EstimateModel::Exact)
            .with_system_nodes(32);
        assert_eq!(m.n_jobs, 123);
        assert!((m.arrivals.mean_interarrival - 17.0).abs() < 1e-12);
        assert!((m.batch_p - 0.9).abs() < 1e-12);
        assert!((m.batch_mean - 12.0).abs() < 1e-12);
        assert_eq!(m.estimates, EstimateModel::Exact);
        assert_eq!(m.system_nodes, 32);
        let t = m.generate(8);
        assert_eq!(t.len(), 123);
        assert!(t.jobs.iter().all(|j| j.procs().unwrap() / 8 <= 32));
        assert!(t.jobs.iter().all(|j| j.req_time == j.run_time));
    }

    #[test]
    fn tenant_mix_stamps_users_without_touching_anything_else() {
        let base = tiny_model().generate(42);
        let mixed = tiny_model().with_tenant_mix(4, 1.0).generate(42);
        assert_eq!(base.len(), mixed.len());
        for (a, b) in base.jobs.iter().zip(&mixed.jobs) {
            assert!((1..=4).contains(&b.user), "tenant id in range: {}", b.user);
            assert_eq!(b.group, 0);
            // Only the identity fields differ; the schedule-relevant trace
            // is byte-identical to the untenanted draw.
            let mut a2 = a.clone();
            a2.user = b.user;
            a2.group = b.group;
            assert_eq!(&a2, b);
        }
    }

    #[test]
    fn tenant_skew_makes_tenant_one_heaviest() {
        let t = tiny_model().with_tenant_mix(8, 1.5).generate(7);
        let mut counts = [0usize; 9];
        for j in &t.jobs {
            counts[j.user as usize] += 1;
        }
        assert!(
            counts[1] > counts[8] * 2,
            "Zipf skew: tenant 1 ({}) dwarfs tenant 8 ({})",
            counts[1],
            counts[8]
        );
        // Uniform mix (skew 0) spreads far more evenly.
        let u = tiny_model().with_tenant_mix(8, 0.0).generate(7);
        let mut uc = [0usize; 9];
        for j in &u.jobs {
            uc[j.user as usize] += 1;
        }
        let (min, max) = (uc[1..].iter().min().unwrap(), uc[1..].iter().max().unwrap());
        assert!(*max < *min * 3, "uniform mix is balanced ({min}..{max})");
    }

    #[test]
    fn max_job_nodes_capped_by_system() {
        let mut m = tiny_model();
        m.stages[1].hi = 10_000;
        assert_eq!(m.max_job_nodes(), 64);
        let t = m.generate(5);
        for j in &t.jobs {
            assert!(j.procs().unwrap() / 8 <= 64);
        }
    }
}
