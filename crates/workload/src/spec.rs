//! The paper's five workloads as one enumeration (Table 1).
//!
//! Experiment binaries select workloads through [`PaperWorkload`]; the
//! `scale` knob shrinks both the job count and the machine proportionally so
//! CI-sized runs keep the full-scale pressure (offered load).

use crate::realrun::{workload5, AppTrace};
use crate::synth::SyntheticTraceModel;
use cluster::ClusterSpec;
use swf::Trace;

/// The five workloads of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperWorkload {
    /// 1 — Cirne model, user estimates.
    W1Cirne,
    /// 2 — Cirne model, exact estimates ("Cirne_ideal").
    W2CirneIdeal,
    /// 3 — RICC-like trace.
    W3Ricc,
    /// 4 — CEA-Curie-like trace (the big workload).
    W4Curie,
    /// 5 — Cirne model converted to application submissions ("real run").
    W5RealRun,
}

impl PaperWorkload {
    pub const ALL: [PaperWorkload; 5] = [
        PaperWorkload::W1Cirne,
        PaperWorkload::W2CirneIdeal,
        PaperWorkload::W3Ricc,
        PaperWorkload::W4Curie,
        PaperWorkload::W5RealRun,
    ];

    /// The four simulator workloads (Figs. 1–3, 8).
    pub const SIMULATED: [PaperWorkload; 4] = [
        PaperWorkload::W1Cirne,
        PaperWorkload::W2CirneIdeal,
        PaperWorkload::W3Ricc,
        PaperWorkload::W4Curie,
    ];

    pub fn label(self) -> &'static str {
        match self {
            PaperWorkload::W1Cirne => "Workload 1 (Cirne)",
            PaperWorkload::W2CirneIdeal => "Workload 2 (Cirne_ideal)",
            PaperWorkload::W3Ricc => "Workload 3 (RICC-sept)",
            PaperWorkload::W4Curie => "Workload 4 (CEA-Curie)",
            PaperWorkload::W5RealRun => "Workload 5 (Cirne_real_run)",
        }
    }

    pub fn short(self) -> &'static str {
        match self {
            PaperWorkload::W1Cirne => "W1",
            PaperWorkload::W2CirneIdeal => "W2",
            PaperWorkload::W3Ricc => "W3",
            PaperWorkload::W4Curie => "W4",
            PaperWorkload::W5RealRun => "W5",
        }
    }

    /// The default CI-sized scale for this workload: a few thousand jobs,
    /// seconds of wall time, same offered load as the paper-scale run.
    pub fn default_ci_scale(self) -> f64 {
        match self {
            PaperWorkload::W1Cirne | PaperWorkload::W2CirneIdeal => 0.20,
            PaperWorkload::W3Ricc => 0.20,
            PaperWorkload::W4Curie => 0.02,
            PaperWorkload::W5RealRun => 1.0, // already only 49 nodes / 2000 jobs
        }
    }

    /// The generative model for simulator workloads (panics for W5, which
    /// carries applications — use [`PaperWorkload::generate_apps`]).
    pub fn model(self, scale: f64) -> SyntheticTraceModel {
        match self {
            PaperWorkload::W1Cirne => crate::cirne::workload1(scale),
            PaperWorkload::W2CirneIdeal => crate::cirne::workload2(scale),
            PaperWorkload::W3Ricc => crate::ricc::workload3(scale),
            PaperWorkload::W4Curie => crate::curie::workload4(scale),
            PaperWorkload::W5RealRun => crate::realrun::workload5_model(),
        }
    }

    /// Generates the trace at the given scale.
    pub fn generate(self, seed: u64, scale: f64) -> Trace {
        self.model(scale).generate(seed)
    }

    /// Workload 5 with its application bindings (always full scale — the
    /// real run is only 49 nodes to begin with).
    pub fn generate_apps(seed: u64) -> AppTrace {
        workload5(seed)
    }

    /// The machine this workload runs on, consistent with `model(scale)`.
    pub fn cluster(self, scale: f64) -> ClusterSpec {
        let m = self.model(scale);
        match self {
            PaperWorkload::W1Cirne | PaperWorkload::W2CirneIdeal => {
                let mut c = ClusterSpec::marenostrum4(m.system_nodes);
                c.name = "Cirne-1024".into();
                c
            }
            PaperWorkload::W3Ricc => {
                let mut c = ClusterSpec::ricc();
                c.nodes = m.system_nodes;
                c
            }
            PaperWorkload::W4Curie => {
                let mut c = ClusterSpec::cea_curie();
                c.nodes = m.system_nodes;
                c
            }
            PaperWorkload::W5RealRun => ClusterSpec::mn4_real_run(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_and_model_sizes_agree() {
        for w in PaperWorkload::SIMULATED {
            for scale in [0.05, 0.25, 1.0] {
                let m = w.model(scale);
                let c = w.cluster(scale);
                assert_eq!(c.nodes, m.system_nodes, "{w:?} at {scale}");
                assert_eq!(c.node.cores(), m.cores_per_node, "{w:?} at {scale}");
            }
        }
    }

    #[test]
    fn w5_cluster_is_mn4_subset() {
        let c = PaperWorkload::W5RealRun.cluster(1.0);
        assert_eq!(c.nodes, 49);
        assert_eq!(c.total_cores(), 2_352);
    }

    #[test]
    fn generate_produces_jobs_for_all() {
        for w in PaperWorkload::SIMULATED {
            let t = w.generate(3, 0.02);
            assert!(!t.is_empty(), "{w:?}");
            // Every job fits the machine.
            let c = w.cluster(0.02);
            for j in &t.jobs {
                assert!(j.procs().unwrap() <= c.total_cores(), "{w:?}");
            }
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = PaperWorkload::ALL.iter().map(|w| w.short()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }
}
