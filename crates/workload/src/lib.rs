//! # workload — workload generation for the SD-Policy reproduction
//!
//! Builds the five workloads of the paper's Table 1:
//!
//! | # | Source (paper)        | Here |
//! |---|-----------------------|------|
//! | 1 | Cirne model, ANL arrivals, user estimates | [`cirne::workload1`] |
//! | 2 | Cirne model, exact estimates (`Cirne_ideal`) | [`cirne::workload2`] |
//! | 3 | RICC-2010 archive trace | [`ricc::workload3`] (synthetic, statistically matched — DESIGN.md §4) |
//! | 4 | CEA-Curie-2011 cleaned trace | [`curie::workload4`] (synthetic, statistically matched) |
//! | 5 | Cirne model → real app submissions | [`realrun::workload5`] + [`apps`] (Table 2 models) |
//!
//! All generation is deterministic in the seed, built on forked
//! [`simkit::DetRng`] streams, and emits [`swf::Trace`] values so real
//! archive files can be substituted anywhere.

pub mod apps;
pub mod arrivals;
pub mod cirne;
pub mod curie;
pub mod dist;
pub mod realrun;
pub mod ricc;
pub mod spec;
pub mod synth;

pub use apps::{AppId, AppModel, APPS};
pub use arrivals::ArrivalModel;
pub use realrun::{workload5, AppTrace};
pub use spec::PaperWorkload;
pub use synth::{EstimateModel, SizeStage, SyntheticTraceModel, TenantMix};
