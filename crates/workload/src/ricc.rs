//! RICC-like synthetic trace (paper Workload 3).
//!
//! The genuine log is `RICC-2010-2` from the Parallel Workloads Archive
//! (offline here — see DESIGN.md §4). Table 1 and the paper's description
//! pin what matters: 10 000 jobs on 1024 nodes / 8192 cores (8-core nodes),
//! 72-node / 576-core maximum job, ≈ 407 000 s makespan (≈ 40 s mean
//! interarrival), "a high number of small jobs requesting few nodes, ranging
//! from short to long runtime, up to four days".

use crate::arrivals::ArrivalModel;
use crate::dist::LogNormal;
use crate::synth::{EstimateModel, SizeStage, SyntheticTraceModel};

/// Workload 3 preset. `scale` scales jobs and system together.
pub fn workload3(scale: f64) -> SyntheticTraceModel {
    let scale = scale.clamp(0.01, 4.0);
    let system_nodes = ((1024.0 * scale) as u32).max(16);
    let max_job = ((72.0 * scale) as u32).clamp(4, system_nodes);
    let mid = (max_job / 4).clamp(2, max_job);
    SyntheticTraceModel {
        name: "RICC-sept",
        n_jobs: ((10_000.0 * scale) as usize).max(300),
        system_nodes,
        cores_per_node: 8,
        arrivals: ArrivalModel::anl(40.0),
        stages: vec![
            // Dominant mass of 1–2 node jobs.
            SizeStage {
                weight: 0.72,
                lo: 1,
                hi: 2,
            },
            SizeStage {
                weight: 0.22,
                lo: 2,
                hi: mid,
            },
            SizeStage {
                weight: 0.06,
                lo: mid,
                hi: max_job,
            },
        ],
        pow2_preference: 0.5,
        runtime: LogNormal::from_median(4_000.0, 2.0),
        short_fraction: 0.50,
        short_range: (10.0, 300.0),
        size_runtime_alpha: 0.10,
        runtime_min: 10,
        runtime_max: 4 * 86_400, // "up to four days"
        estimates: EstimateModel::UserFactor { max_factor: 10.0 },
        batch_p: 0.40,
        batch_mean: 8.0,
        tenant_mix: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let m = workload3(1.0);
        assert_eq!(m.n_jobs, 10_000);
        assert_eq!(m.system_nodes, 1024);
        assert_eq!(m.cores_per_node, 8);
        assert_eq!(m.max_job_nodes(), 72);
    }

    #[test]
    fn dominated_by_small_jobs() {
        let t = workload3(0.2).generate(5);
        let small = t
            .jobs
            .iter()
            .filter(|j| j.procs().unwrap() <= 2 * 8)
            .count() as f64
            / t.len() as f64;
        assert!(small > 0.55, "small-job fraction {small}");
    }

    #[test]
    fn runtime_tail_reaches_days() {
        let t = workload3(0.3).generate(6);
        let max_rt = t.jobs.iter().map(|j| j.runtime().unwrap()).max().unwrap();
        assert!(max_rt > 86_400, "long tail present (max {max_rt})");
        assert!(max_rt <= 4 * 86_400);
    }
}
