//! Workload 5: the "real run" job list (paper §4.4, Table 1 row 5, Table 2).
//!
//! "Workload 5 was created from Cirne model, then converted to real
//! applications submissions … 2000 jobs … maximum of 16 nodes, 768 cores per
//! job, on a system of 49 nodes, 2352 cores." Each generated job carries an
//! [`AppId`] so the simulator can apply the application-aware rate and power
//! models — our substitution for executing the binaries on MareNostrum4.

use crate::apps::{sample_app, AppId, AppModel};
use crate::arrivals::ArrivalModel;
use crate::dist::LogNormal;
use crate::synth::{EstimateModel, SizeStage, SyntheticTraceModel};
use simkit::DetRng;
use swf::Trace;

/// A trace whose jobs are bound to concrete applications.
#[derive(Debug, Clone)]
pub struct AppTrace {
    pub trace: Trace,
    /// Parallel to `trace.jobs`.
    pub apps: Vec<AppId>,
}

impl AppTrace {
    pub fn app_of(&self, idx: usize) -> &'static AppModel {
        AppModel::by_id(self.apps[idx])
    }

    /// Job mix as `(app, count)` pairs (Table 2 check).
    pub fn mix(&self) -> Vec<(AppId, usize)> {
        let mut counts: Vec<(AppId, usize)> = crate::apps::APPS
            .iter()
            .map(|a| (a.id, 0usize))
            .collect();
        for &a in &self.apps {
            counts.iter_mut().find(|(id, _)| *id == a).unwrap().1 += 1;
        }
        counts
    }
}

/// The Cirne-derived model scaled to the 49-node MN4 subset.
pub fn workload5_model() -> SyntheticTraceModel {
    SyntheticTraceModel {
        name: "Cirne_real_run",
        n_jobs: 2_000,
        system_nodes: 49,
        cores_per_node: 48,
        arrivals: ArrivalModel::anl(80.0), // ≈ 159 313 s makespan / 2000 jobs
        stages: vec![
            SizeStage {
                weight: 0.55,
                lo: 1,
                hi: 2,
            },
            SizeStage {
                weight: 0.35,
                lo: 2,
                hi: 6,
            },
            SizeStage {
                weight: 0.10,
                lo: 6,
                hi: 16, // "maximum of 16 nodes, 768 cores per job"
            },
        ],
        pow2_preference: 0.7,
        runtime: LogNormal::from_median(1_000.0, 1.8),
        short_fraction: 0.45,
        short_range: (5.0, 180.0),
        size_runtime_alpha: 0.10,
        runtime_min: 5,
        runtime_max: 3 * 3600,
        estimates: EstimateModel::UserFactor { max_factor: 4.0 },
        batch_p: 0.2,
        batch_mean: 3.0,
        tenant_mix: None,
    }
}

/// Generates Workload 5: the Cirne trace converted to application
/// submissions. Applications whose Table 2 profile constrains size/duration
/// are matched to fitting jobs (Alya = "small nodes, high time", NEST/
/// CoreNeuron = any, PILS/STREAM = "small/med time").
pub fn workload5(seed: u64) -> AppTrace {
    let model = workload5_model();
    let trace = model.generate(seed);
    let mut rng = DetRng::new(seed).fork(77);
    let median_rt = 1_500.0;
    let apps = trace
        .jobs
        .iter()
        .map(|j| {
            let rt = j.runtime().unwrap_or(0) as f64;
            let nodes = j.procs().unwrap_or(48) / 48;
            // Re-draw a bounded number of times until the app's qualitative
            // constraints fit the job; fall back to the *first* draw so the
            // overall mix stays true to the Table 2 shares.
            let first = sample_app(&mut rng);
            let mut pick = first;
            for attempt in 0..4 {
                let app = if attempt == 0 { first } else { sample_app(&mut rng) };
                let ok = match app {
                    AppId::Alya => nodes <= 4 && rt > median_rt,
                    AppId::Pils | AppId::Stream => rt <= 8.0 * median_rt,
                    AppId::CoreNeuron | AppId::Nest => true,
                };
                if ok {
                    pick = app;
                    break;
                }
            }
            pick
        })
        .collect();
    AppTrace { trace, apps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload5_shape_matches_table1() {
        let at = workload5(42);
        assert_eq!(at.trace.len(), 2_000);
        assert_eq!(at.apps.len(), 2_000);
        let max_procs = at
            .trace
            .jobs
            .iter()
            .map(|j| j.procs().unwrap())
            .max()
            .unwrap();
        assert!(max_procs <= 768, "max {max_procs}");
    }

    #[test]
    fn mix_tracks_table2_shares() {
        let at = workload5(42);
        let mix = at.mix();
        let frac = |id: AppId| {
            mix.iter().find(|(a, _)| *a == id).unwrap().1 as f64 / at.apps.len() as f64
        };
        assert!((frac(AppId::Pils) - 0.305).abs() < 0.06, "{}", frac(AppId::Pils));
        assert!((frac(AppId::Stream) - 0.308).abs() < 0.06);
        assert!((frac(AppId::CoreNeuron) - 0.355).abs() < 0.08);
        assert!(frac(AppId::Nest) < 0.08);
        assert!(frac(AppId::Alya) < 0.03);
    }

    #[test]
    fn alya_jobs_are_small_and_long() {
        let at = workload5(42);
        for (i, &app) in at.apps.iter().enumerate() {
            if app == AppId::Alya {
                let j = &at.trace.jobs[i];
                assert!(j.procs().unwrap() / 48 <= 4, "Alya on few nodes");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = workload5(1);
        let b = workload5(1);
        assert_eq!(a.apps, b.apps);
        assert_eq!(a.trace.jobs, b.trace.jobs);
    }
}
