//! Cirne–Berman model presets (paper Workloads 1, 2 and the base of 5).
//!
//! "We generated workloads 1, 2 and 5 with the model developed by Cirne,
//! based on the characterization of four different logs. We configured it to
//! use ANL arrival pattern, and we scaled the model to the considered system
//! size." (paper §4). Table 1 pins the shapes: 5000 jobs on 1024 nodes /
//! 49152 cores with a 128-node / 6144-core maximum job and a ≈ 900 000 s
//! makespan (≈ 180 s mean interarrival).

use crate::arrivals::ArrivalModel;
use crate::dist::LogNormal;
use crate::synth::{EstimateModel, SizeStage, SyntheticTraceModel};

/// Workload 1: Cirne model with user-style (inaccurate) estimates.
pub fn workload1(scale: f64) -> SyntheticTraceModel {
    base(scale, EstimateModel::UserFactor { max_factor: 8.0 }, "Cirne")
}

/// Workload 2: `Cirne_ideal` — identical distributions, exact estimates
/// ("the job's requested time same to the real duration").
pub fn workload2(scale: f64) -> SyntheticTraceModel {
    base(scale, EstimateModel::Exact, "Cirne_ideal")
}

/// Shared Cirne shape. `scale` scales the *job count and system size
/// together* (1.0 = the paper's 5000 jobs / 1024 nodes), preserving the
/// pressure (offered load) so scaled-down runs keep the same qualitative
/// behaviour.
fn base(scale: f64, estimates: EstimateModel, name: &'static str) -> SyntheticTraceModel {
    let scale = scale.clamp(0.01, 4.0);
    let system_nodes = ((1024.0 * scale) as u32).max(16);
    let max_job = ((128.0 * scale) as u32).clamp(4, system_nodes);
    let mid = (max_job / 8).clamp(2, max_job);
    SyntheticTraceModel {
        name,
        n_jobs: ((5000.0 * scale) as usize).max(200),
        system_nodes,
        cores_per_node: 48,
        arrivals: ArrivalModel::anl(180.0),
        stages: vec![
            // Sequential-ish small jobs (Cirne: a large fraction of jobs are
            // sequential or near-sequential).
            SizeStage {
                weight: 0.30,
                lo: 1,
                hi: 2,
            },
            // Small parallel.
            SizeStage {
                weight: 0.50,
                lo: 2,
                hi: mid,
            },
            // Large parallel tail.
            SizeStage {
                weight: 0.20,
                lo: mid,
                hi: max_job,
            },
        ],
        pow2_preference: 0.75,
        runtime: LogNormal::from_median(9_000.0, 1.8),
        short_fraction: 0.35,
        short_range: (5.0, 600.0),
        size_runtime_alpha: 0.12,
        runtime_min: 5,
        runtime_max: 2 * 86_400,
        estimates,
        batch_p: 0.30,
        batch_mean: 6.0,
        tenant_mix: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf::TraceStats;

    #[test]
    fn full_scale_matches_table1_shape() {
        let m = workload1(1.0);
        assert_eq!(m.n_jobs, 5000);
        assert_eq!(m.system_nodes, 1024);
        assert_eq!(m.cores_per_node, 48);
        assert_eq!(m.max_job_nodes(), 128);
    }

    #[test]
    fn workload2_is_exact_estimate_variant() {
        let t = workload2(0.05).generate(7);
        assert!(t.jobs.iter().all(|j| j.req_time == j.run_time));
        let t1 = workload1(0.05).generate(7);
        assert!(t1.jobs.iter().any(|j| j.req_time > j.run_time));
    }

    #[test]
    fn scaled_down_preserves_pressure_order() {
        // Offered load per node should be in the same ballpark across scales.
        let load = |scale: f64| {
            let m = workload1(scale);
            let t = m.generate(11);
            let s = TraceStats::compute(&t);
            let span = t.jobs.last().unwrap().submit - t.jobs[0].submit;
            s.total_core_seconds / (span.max(1) as f64 * m.system_nodes as f64 * 48.0)
        };
        // Very small scales see strong max-job granularity effects and
        // short-trace variance, so the bound is deliberately loose: the
        // offered load must stay within ~3× across a 2.5× scale change.
        let full = load(0.25);
        let small = load(0.1);
        let ratio = small / full;
        assert!((0.3..3.0).contains(&ratio), "full {full} small {small}");
    }

    #[test]
    fn max_job_size_respected() {
        let m = workload1(0.1); // 102 nodes, max job 12
        let t = m.generate(3);
        let max = t.jobs.iter().map(|j| j.procs().unwrap()).max().unwrap();
        assert!(max <= m.max_job_nodes() as u64 * 48);
    }
}
