//! Behavioural models of the real applications (paper Table 2).
//!
//! Substitution for running the actual binaries on MareNostrum4 (see
//! DESIGN.md §4): each application is characterised by its CPU utilisation,
//! memory-bandwidth pressure and an Amdahl-style scalability curve. These
//! drive two things in the Workload-5 / Fig.-9 simulation:
//!
//! 1. the **co-scheduling rate model** — a job shrunk to `c` of `C` cores
//!    loses `speedup(c)/speedup(C)` (less than proportional, because real
//!    codes do not scale perfectly — the paper's second observed reason for
//!    malleable jobs improving runtime), minus a memory-contention term when
//!    sharing a node with a bandwidth-hungry neighbour;
//! 2. the **power weighting** — compute-bound jobs draw more dynamic power
//!    than memory-bound ones, which is how the energy savings of Fig. 9
//!    materialise.

/// Identifies one of the modelled applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// PILS — synthetic compute-bound kernel (LeWI benchmark suite).
    Pils,
    /// STREAM — memory-bandwidth benchmark.
    Stream,
    /// CoreNeuron — HBP neural simulator, compute+memory intensive.
    CoreNeuron,
    /// NEST — HBP spiking-network simulator.
    Nest,
    /// Alya — multi-physics solver.
    Alya,
}

/// Static characterisation of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppModel {
    pub id: AppId,
    pub name: &'static str,
    /// Fraction of the Workload-5 job mix (Table 2 "% workload").
    pub share: f64,
    /// CPU pipeline utilisation in `[0,1]` (power weight).
    pub cpu_util: f64,
    /// Memory-bandwidth pressure in `[0,1]` (contention driver).
    pub mem_util: f64,
    /// Amdahl serial fraction (scalability limit).
    pub serial_fraction: f64,
}

/// The five applications with Table 2's mix and qualitative profiles.
pub const APPS: [AppModel; 5] = [
    AppModel {
        id: AppId::Pils,
        name: "PILS",
        share: 0.305,
        cpu_util: 0.95,
        mem_util: 0.10,
        serial_fraction: 0.015,
    },
    AppModel {
        id: AppId::Stream,
        name: "STREAM",
        share: 0.308,
        cpu_util: 0.30,
        mem_util: 0.95,
        serial_fraction: 0.05,
    },
    AppModel {
        id: AppId::CoreNeuron,
        name: "CoreNeuron",
        share: 0.355,
        cpu_util: 0.90,
        mem_util: 0.60,
        serial_fraction: 0.03,
    },
    AppModel {
        id: AppId::Nest,
        name: "NEST",
        share: 0.026,
        cpu_util: 0.85,
        mem_util: 0.55,
        serial_fraction: 0.08,
    },
    AppModel {
        id: AppId::Alya,
        name: "Alya",
        share: 0.006,
        cpu_util: 0.90,
        mem_util: 0.60,
        serial_fraction: 0.04,
    },
];

/// Coupling strength of the memory-contention term (calibrated so a
/// STREAM/STREAM pairing loses ~25 % and a PILS/STREAM pairing ~3 %).
pub const MEM_CONTENTION_BETA: f64 = 0.30;

impl AppModel {
    pub fn by_id(id: AppId) -> &'static AppModel {
        APPS.iter().find(|a| a.id == id).expect("all ids present")
    }

    /// Amdahl speedup at `cores` (relative to 1 core).
    pub fn speedup(&self, cores: u32) -> f64 {
        let n = cores.max(1) as f64;
        1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / n)
    }

    /// Parallel efficiency at `cores`.
    pub fn efficiency(&self, cores: u32) -> f64 {
        self.speedup(cores) / cores.max(1) as f64
    }

    /// Progress-rate factor of this job when it holds `cores` of the `full`
    /// cores it was sized for (1.0 = full speed).
    ///
    /// `speedup(c)/speedup(C)` — strictly greater than `c/C` for any
    /// imperfectly scaling code, which is why partitioning nodes between
    /// jobs can beat exclusive use.
    pub fn shrink_rate(&self, cores: u32, full: u32) -> f64 {
        if cores >= full {
            return 1.0;
        }
        (self.speedup(cores) / self.speedup(full)).clamp(0.0, 1.0)
    }

    /// Multiplicative slowdown from sharing a node with `neighbour`
    /// (memory-bandwidth contention): `1/(1 + β·mem_self·mem_other)`.
    pub fn contention_factor(&self, neighbour: &AppModel) -> f64 {
        1.0 / (1.0 + MEM_CONTENTION_BETA * self.mem_util * neighbour.mem_util)
    }

    /// Combined co-scheduling rate: shrink benefit × contention penalty.
    pub fn co_schedule_rate(&self, cores: u32, full: u32, neighbour: Option<&AppModel>) -> f64 {
        let base = self.shrink_rate(cores, full);
        match neighbour {
            Some(n) => base * self.contention_factor(n),
            None => base,
        }
    }
}

/// Draws an application id according to the Table 2 shares.
pub fn sample_app(rng: &mut simkit::DetRng) -> AppId {
    let weights: Vec<f64> = APPS.iter().map(|a| a.share).collect();
    APPS[rng.weighted_index(&weights)].id
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::DetRng;

    #[test]
    fn shares_sum_to_one() {
        let total: f64 = APPS.iter().map(|a| a.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn speedup_monotone_and_bounded() {
        for app in &APPS {
            let mut last = 0.0;
            for c in [1, 2, 4, 8, 16, 24, 48] {
                let s = app.speedup(c);
                assert!(s >= last, "{} monotone", app.name);
                assert!(s <= c as f64 + 1e-9, "{} superlinear?", app.name);
                last = s;
            }
            assert!((app.speedup(1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn shrink_rate_beats_proportional() {
        // Half the cores must keep MORE than half the speed for every app —
        // the paper's "scalability problems" observation.
        for app in &APPS {
            let r = app.shrink_rate(24, 48);
            assert!(r > 0.5, "{}: rate {r}", app.name);
            assert!(r < 1.0);
        }
    }

    #[test]
    fn shrink_rate_full_allocation_is_one() {
        let app = AppModel::by_id(AppId::Pils);
        assert_eq!(app.shrink_rate(48, 48), 1.0);
        assert_eq!(app.shrink_rate(64, 48), 1.0);
    }

    #[test]
    fn contention_hits_memory_bound_pairs_hardest() {
        let stream = AppModel::by_id(AppId::Stream);
        let pils = AppModel::by_id(AppId::Pils);
        let ss = stream.contention_factor(stream);
        let sp = stream.contention_factor(pils);
        let pp = pils.contention_factor(pils);
        assert!(ss < sp, "stream+stream worse than stream+pils");
        assert!(pp > 0.99, "compute-bound pairs barely contend");
        assert!((0.7..0.85).contains(&ss), "stream pair factor {ss}");
    }

    #[test]
    fn co_schedule_rate_composes() {
        let cn = AppModel::by_id(AppId::CoreNeuron);
        let stream = AppModel::by_id(AppId::Stream);
        let solo = cn.co_schedule_rate(24, 48, None);
        let shared = cn.co_schedule_rate(24, 48, Some(stream));
        assert!(shared < solo);
        assert!(shared > 0.5 * 0.7, "still well above worst case");
    }

    #[test]
    fn sample_app_tracks_shares() {
        let mut rng = DetRng::new(17);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(sample_app(&mut rng)).or_insert(0usize) += 1;
        }
        let frac = |id: AppId| counts.get(&id).copied().unwrap_or(0) as f64 / 20_000.0;
        assert!((frac(AppId::Pils) - 0.305).abs() < 0.02);
        assert!((frac(AppId::Stream) - 0.308).abs() < 0.02);
        assert!((frac(AppId::CoreNeuron) - 0.355).abs() < 0.02);
        assert!(frac(AppId::Nest) < 0.06);
        assert!(frac(AppId::Alya) < 0.03);
    }
}
