//! Job arrival processes.
//!
//! The Cirne model is configured with the **ANL arrival pattern** (paper
//! §4): a non-homogeneous Poisson process with a strong daily cycle (peak
//! submissions during working hours) and a weekend dip. We implement it by
//! thinning a homogeneous Poisson process against an hour-of-day × weekday
//! intensity profile.

use crate::dist::{Exponential, Sampler};
use simkit::{DetRng, DAY, HOUR};

/// Hour-of-day relative intensity profile (ANL-like: low at night, ramping
/// from 8 h, peak 10 h–17 h, tapering in the evening). Mean is ~1.0.
pub const ANL_HOURLY: [f64; 24] = [
    0.35, 0.30, 0.25, 0.22, 0.20, 0.22, 0.35, 0.60, 1.10, 1.60, 1.90, 2.00, 1.85, 1.90, 1.95,
    1.85, 1.70, 1.50, 1.20, 0.95, 0.80, 0.65, 0.50, 0.40,
];

/// A non-homogeneous Poisson arrival process.
#[derive(Debug, Clone)]
pub struct ArrivalModel {
    /// Mean interarrival time in seconds at intensity 1.0.
    pub mean_interarrival: f64,
    /// Relative intensity per hour of day (24 entries).
    pub hourly: [f64; 24],
    /// Multiplier applied on Saturdays/Sundays (day 5 and 6 of the week;
    /// the trace starts on a Monday by convention).
    pub weekend_factor: f64,
}

impl ArrivalModel {
    /// Constant-rate Poisson arrivals.
    pub fn uniform(mean_interarrival: f64) -> ArrivalModel {
        ArrivalModel {
            mean_interarrival,
            hourly: [1.0; 24],
            weekend_factor: 1.0,
        }
    }

    /// The ANL pattern used for the Cirne workloads.
    pub fn anl(mean_interarrival: f64) -> ArrivalModel {
        ArrivalModel {
            mean_interarrival,
            hourly: ANL_HOURLY,
            weekend_factor: 0.55,
        }
    }

    /// A stylised square-wave day/night cycle: working hours (8 h–20 h) run
    /// at `contrast` times the night intensity, normalised so the profile's
    /// mean stays 1.0 (the configured `mean_interarrival` is preserved).
    /// `contrast` is clamped to ≥ 1.
    pub fn day_night(mean_interarrival: f64, contrast: f64) -> ArrivalModel {
        let c = contrast.max(1.0);
        let mut hourly = [1.0; 24];
        for (h, v) in hourly.iter_mut().enumerate() {
            if (8..20).contains(&h) {
                *v = c;
            }
        }
        let mean: f64 = hourly.iter().sum::<f64>() / 24.0;
        for v in hourly.iter_mut() {
            *v /= mean;
        }
        ArrivalModel {
            mean_interarrival,
            hourly,
            weekend_factor: 1.0,
        }
    }

    /// Sets the weekend intensity multiplier (builder-style).
    pub fn with_weekend_factor(mut self, factor: f64) -> ArrivalModel {
        self.weekend_factor = factor.max(0.0);
        self
    }

    /// Relative intensity at a given instant (hour cycle × weekend factor).
    pub fn intensity(&self, t: u64) -> f64 {
        let hour = ((t % DAY) / HOUR) as usize;
        let weekday = (t / DAY) % 7;
        let wf = if weekday >= 5 { self.weekend_factor } else { 1.0 };
        self.hourly[hour] * wf
    }

    /// Peak relative intensity (thinning envelope).
    fn peak(&self) -> f64 {
        let hmax = self.hourly.iter().cloned().fold(0.0_f64, f64::max);
        hmax * self.weekend_factor.max(1.0)
    }

    /// Generates `n` arrival instants (seconds, non-decreasing, starting
    /// after `t0`) by thinning.
    pub fn generate(&self, n: usize, t0: u64, rng: &mut DetRng) -> Vec<u64> {
        let peak = self.peak().max(1e-9);
        // Homogeneous candidate process at the peak rate.
        let gap = Exponential {
            mean: self.mean_interarrival / peak,
        };
        let mut out = Vec::with_capacity(n);
        let mut t = t0 as f64;
        while out.len() < n {
            t += gap.sample(rng).max(1e-9);
            let accept_p = self.intensity(t as u64) / peak;
            if rng.chance(accept_p) {
                out.push(t as u64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mean_interarrival_matches() {
        let m = ArrivalModel::uniform(100.0);
        let mut rng = DetRng::new(3);
        let arr = m.generate(20_000, 0, &mut rng);
        let span = (arr.last().unwrap() - arr[0]) as f64;
        let mean = span / (arr.len() - 1) as f64;
        assert!((mean / 100.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        let m = ArrivalModel::anl(60.0);
        let mut rng = DetRng::new(7);
        let arr = m.generate(5_000, 1_000, &mut rng);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr[0] >= 1_000);
    }

    #[test]
    fn anl_daytime_heavier_than_night() {
        let m = ArrivalModel::anl(30.0);
        let mut rng = DetRng::new(11);
        let arr = m.generate(50_000, 0, &mut rng);
        let mut day = 0usize;
        let mut night = 0usize;
        for &t in &arr {
            let hour = (t % DAY) / HOUR;
            if (10..18).contains(&hour) {
                day += 1;
            } else if hour < 6 {
                night += 1;
            }
        }
        // 8 daytime hours vs 6 night hours; intensity ratio ≈ 1.9/0.25 ≈ 7.6,
        // so even normalised per hour the day count dominates clearly.
        assert!(day > 3 * night, "day {day} night {night}");
    }

    #[test]
    fn weekend_dip_visible() {
        let m = ArrivalModel::anl(30.0);
        let mut rng = DetRng::new(13);
        let arr = m.generate(100_000, 0, &mut rng);
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        for &t in &arr {
            if (t / DAY) % 7 >= 5 {
                weekend += 1;
            } else {
                weekday += 1;
            }
        }
        let per_weekday = weekday as f64 / 5.0;
        let per_weekend = weekend as f64 / 2.0;
        let ratio = per_weekend / per_weekday;
        assert!((0.40..0.75).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let m = ArrivalModel::anl(45.0);
        let a = m.generate(100, 0, &mut DetRng::new(5));
        let b = m.generate(100, 0, &mut DetRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn day_night_contrast_and_mean_preserved() {
        let m = ArrivalModel::day_night(50.0, 4.0);
        // Mean intensity stays 1.0 so the configured rate is honoured.
        let mean: f64 = m.hourly.iter().sum::<f64>() / 24.0;
        assert!((mean - 1.0).abs() < 1e-12, "mean {mean}");
        // Day vs night ratio equals the contrast.
        assert!((m.hourly[12] / m.hourly[2] - 4.0).abs() < 1e-12);
        assert_eq!(m.weekend_factor, 1.0);
        // Degenerate contrast collapses to uniform.
        let flat = ArrivalModel::day_night(50.0, 0.5);
        assert!(flat.hourly.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn weekend_factor_builder() {
        let m = ArrivalModel::day_night(30.0, 2.0).with_weekend_factor(0.3);
        assert!((m.weekend_factor - 0.3).abs() < 1e-12);
        let sat = 5 * DAY + 12 * HOUR;
        assert!(m.intensity(sat) < m.intensity(12 * HOUR));
    }

    #[test]
    fn intensity_profile_lookup() {
        let m = ArrivalModel::anl(1.0);
        assert_eq!(m.intensity(11 * HOUR), ANL_HOURLY[11]);
        // Saturday (day 5), 11:00
        let sat = 5 * DAY + 11 * HOUR;
        assert!((m.intensity(sat) - ANL_HOURLY[11] * 0.55).abs() < 1e-12);
    }
}
