//! Probability distributions for workload modelling.
//!
//! Implemented in-crate (instead of pulling `rand_distr`) so the exact
//! sampling algorithms are pinned: workload generation must be reproducible
//! bit-for-bit across toolchain updates for the experiments to be
//! comparable. All samplers draw from [`simkit::DetRng`].
//!
//! The set matches what supercomputer workload models need: log-uniform and
//! two-stage log-uniform (Cirne–Berman sizes), log-normal (runtimes),
//! gamma/hyper-gamma (Lublin–Feitelson runtimes), Weibull and exponential
//! (interarrival gaps).

use simkit::DetRng;

/// A distribution that can draw `f64` samples.
pub trait Sampler {
    fn sample(&self, rng: &mut DetRng) -> f64;
}

/// Standard normal via Box–Muller (stateless variant).
#[inline]
pub fn standard_normal(rng: &mut DetRng) -> f64 {
    // Avoid u1 == 0 (log singularity).
    let u1 = loop {
        let u = rng.f64();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2 = rng.f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    pub mean: f64,
    pub sd: f64,
}

impl Sampler for Normal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.mean + self.sd * standard_normal(rng)
    }
}

/// Log-normal: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

impl LogNormal {
    /// Parameterises from the desired median and the multiplicative spread
    /// (sigma in log-space).
    pub fn from_median(median: f64, sigma: f64) -> LogNormal {
        LogNormal {
            mu: median.ln(),
            sigma,
        }
    }

    /// Theoretical mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Exponential with the given mean (`1/rate`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    pub mean: f64,
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let u = loop {
            let u = rng.f64();
            if u > f64::EPSILON {
                break u;
            }
        };
        -self.mean * u.ln()
    }
}

/// Weibull with shape `k` and scale `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Weibull {
    pub shape: f64,
    pub scale: f64,
}

impl Sampler for Weibull {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let u = loop {
            let u = rng.f64();
            if u > f64::EPSILON {
                break u;
            }
        };
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

/// Gamma with shape `k` and scale `theta` (Marsaglia–Tsang method).
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    pub shape: f64,
    pub scale: f64,
}

impl Sampler for Gamma {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let k = self.shape;
        if k < 1.0 {
            // Boost: gamma(k) = gamma(k+1) · U^(1/k)
            let g = Gamma {
                shape: k + 1.0,
                scale: self.scale,
            }
            .sample(rng);
            let u = rng.f64().max(f64::EPSILON);
            return g * u.powf(1.0 / k);
        }
        let d = k - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.f64();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v * self.scale;
            }
            if u.max(f64::MIN_POSITIVE).ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

/// Mixture of two gammas (Lublin–Feitelson "hyper-gamma" runtimes):
/// with probability `p` draw from `g1`, else `g2`.
#[derive(Debug, Clone, Copy)]
pub struct HyperGamma {
    pub p: f64,
    pub g1: Gamma,
    pub g2: Gamma,
}

impl Sampler for HyperGamma {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        if rng.chance(self.p) {
            self.g1.sample(rng)
        } else {
            self.g2.sample(rng)
        }
    }
}

/// Log-uniform over `[lo, hi]`: `exp(U(ln lo, ln hi))`.
#[derive(Debug, Clone, Copy)]
pub struct LogUniform {
    pub lo: f64,
    pub hi: f64,
}

impl Sampler for LogUniform {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        debug_assert!(self.lo > 0.0 && self.hi >= self.lo);
        rng.range_f64(self.lo.ln(), self.hi.ln()).exp()
    }
}

/// Cirne–Berman **two-stage log-uniform**: with probability `p` draw
/// log-uniform from `[lo, mid]`, else from `[mid, hi]`. Captures the
/// "mass of small jobs plus a tail of large ones" shape of job sizes.
#[derive(Debug, Clone, Copy)]
pub struct TwoStageLogUniform {
    pub p: f64,
    pub lo: f64,
    pub mid: f64,
    pub hi: f64,
}

impl Sampler for TwoStageLogUniform {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        let (lo, hi) = if rng.chance(self.p) {
            (self.lo, self.mid)
        } else {
            (self.mid, self.hi)
        };
        LogUniform { lo, hi }.sample(rng)
    }
}

/// Clamps an inner sampler to `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct Clamped<S> {
    pub inner: S,
    pub lo: f64,
    pub hi: f64,
}

impl<S: Sampler> Sampler for Clamped<S> {
    fn sample(&self, rng: &mut DetRng) -> f64 {
        self.inner.sample(rng).clamp(self.lo, self.hi)
    }
}

/// Rounds a sampled value up to the next "round" user estimate, mimicking
/// how users request 30 min / 1 h / 2 h / … wall-times.
pub fn round_up_to_common_limit(secs: f64) -> u64 {
    const LIMITS: &[u64] = &[
        300, 600, 1800, 3600, 7200, 14_400, 21_600, 43_200, 86_400, 172_800, 345_600, 604_800,
    ];
    let s = secs.max(1.0) as u64;
    for &l in LIMITS {
        if s <= l {
            return l;
        }
    }
    // Beyond a week: round up to whole days.
    s.div_ceil(86_400) * 86_400
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xC0FFEE)
    }

    fn sample_stats<S: Sampler>(s: &S, n: usize) -> (f64, f64) {
        let mut r = rng();
        let mut w = simkit::Welford::new();
        for _ in 0..n {
            w.add(s.sample(&mut r));
        }
        (w.mean(), w.variance())
    }

    #[test]
    fn normal_moments() {
        let (mean, var) = sample_stats(&Normal { mean: 5.0, sd: 2.0 }, 50_000);
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_median_and_mean() {
        let ln = LogNormal::from_median(100.0, 0.5);
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_001).map(|_| ln.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[10_000];
        assert!((median / 100.0 - 1.0).abs() < 0.05, "median {median}");
        let (mean, _) = sample_stats(&ln, 50_000);
        assert!((mean / ln.mean() - 1.0).abs() < 0.05, "mean {mean} vs {}", ln.mean());
    }

    #[test]
    fn exponential_mean() {
        let (mean, var) = sample_stats(&Exponential { mean: 42.0 }, 50_000);
        assert!((mean / 42.0 - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var / (42.0 * 42.0) - 1.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let (mean, _) = sample_stats(
            &Weibull {
                shape: 1.0,
                scale: 10.0,
            },
            50_000,
        );
        assert!((mean / 10.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gamma_moments() {
        // mean = k·theta, var = k·theta²
        let g = Gamma {
            shape: 3.0,
            scale: 2.0,
        };
        let (mean, var) = sample_stats(&g, 50_000);
        assert!((mean - 6.0).abs() < 0.1, "mean {mean}");
        assert!((var - 12.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn gamma_small_shape_positive() {
        let g = Gamma {
            shape: 0.4,
            scale: 1.0,
        };
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(g.sample(&mut r) >= 0.0);
        }
        let (mean, _) = sample_stats(&g, 50_000);
        assert!((mean - 0.4).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn hypergamma_mixes() {
        let hg = HyperGamma {
            p: 0.5,
            g1: Gamma {
                shape: 1.0,
                scale: 1.0,
            },
            g2: Gamma {
                shape: 1.0,
                scale: 100.0,
            },
        };
        let (mean, _) = sample_stats(&hg, 50_000);
        assert!((mean - 50.5).abs() < 2.5, "mean {mean}");
    }

    #[test]
    fn loguniform_bounds_and_median() {
        let lu = LogUniform { lo: 1.0, hi: 1000.0 };
        let mut r = rng();
        let mut samples: Vec<f64> = (0..20_001).map(|_| lu.sample(&mut r)).collect();
        for &s in &samples {
            assert!((1.0..=1000.0).contains(&s));
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // median of log-uniform = geometric mean of bounds ≈ 31.6
        assert!((samples[10_000] / 31.62 - 1.0).abs() < 0.1);
    }

    #[test]
    fn two_stage_respects_split() {
        let ts = TwoStageLogUniform {
            p: 0.8,
            lo: 1.0,
            mid: 8.0,
            hi: 512.0,
        };
        let mut r = rng();
        let small = (0..20_000)
            .filter(|_| ts.sample(&mut r) <= 8.0)
            .count() as f64
            / 20_000.0;
        assert!((small - 0.8).abs() < 0.02, "small fraction {small}");
    }

    #[test]
    fn clamped_stays_in_range() {
        let c = Clamped {
            inner: Normal { mean: 0.0, sd: 10.0 },
            lo: -1.0,
            hi: 1.0,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let x = c.sample(&mut r);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn round_up_limits() {
        assert_eq!(round_up_to_common_limit(1.0), 300);
        assert_eq!(round_up_to_common_limit(301.0), 600);
        assert_eq!(round_up_to_common_limit(3600.0), 3600);
        assert_eq!(round_up_to_common_limit(100_000.0), 172_800);
        assert_eq!(round_up_to_common_limit(700_000.0), 9 * 86_400);
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = Gamma {
            shape: 2.0,
            scale: 3.0,
        };
        let a: Vec<f64> = {
            let mut r = DetRng::new(1);
            (0..10).map(|_| g.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = DetRng::new(1);
            (0..10).map(|_| g.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
