//! CEA-Curie-like synthetic trace (paper Workload 4 — "the big workload").
//!
//! The genuine log is `CEA-Curie-2011-2.1-cln` restricted to its primary
//! partition (offline here — see DESIGN.md §4). Table 1 pins: 198 509 jobs
//! on 5040 nodes / 80 640 cores (16-core nodes), a 4988-node / 79 808-core
//! maximum job, 21 615 111 s (≈ 250 days) makespan — ≈ 109 s mean
//! interarrival. The log is dominated by small short jobs (hence the very
//! high 3666 average slowdown) with a thin tail of near-machine-size runs.

use crate::arrivals::ArrivalModel;
use crate::dist::LogNormal;
use crate::synth::{EstimateModel, SizeStage, SyntheticTraceModel};

/// Workload 4 preset. `scale` scales jobs and system together
/// (`scale = 1.0` reproduces the full 198 K-job eight-month run).
pub fn workload4(scale: f64) -> SyntheticTraceModel {
    let scale = scale.clamp(0.002, 2.0);
    let system_nodes = ((5040.0 * scale) as u32).max(24);
    let max_job = ((4988.0 * scale) as u32).clamp(4, system_nodes);
    let mid = (max_job / 16).clamp(4, max_job);
    SyntheticTraceModel {
        name: "CEA-Curie",
        n_jobs: ((198_509.0 * scale) as usize).max(500),
        system_nodes,
        cores_per_node: 16,
        arrivals: ArrivalModel::anl(109.0),
        stages: vec![
            // The overwhelming mass: single-node to 4-node jobs.
            SizeStage {
                weight: 0.82,
                lo: 1,
                hi: 4,
            },
            // Mid-size production runs.
            SizeStage {
                weight: 0.16,
                lo: 4,
                hi: mid,
            },
            // Rare capability jobs up to nearly the whole machine.
            SizeStage {
                weight: 0.02,
                lo: mid,
                hi: max_job,
            },
        ],
        pow2_preference: 0.6,
        runtime: LogNormal::from_median(1_500.0, 2.0),
        short_fraction: 0.5,
        short_range: (5.0, 300.0),
        size_runtime_alpha: 0.12,
        runtime_min: 5,
        runtime_max: 3 * 86_400,
        estimates: EstimateModel::UserFactor { max_factor: 12.0 },
        batch_p: 0.35,
        batch_mean: 6.0,
        tenant_mix: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_table1() {
        let m = workload4(1.0);
        assert_eq!(m.n_jobs, 198_509);
        assert_eq!(m.system_nodes, 5_040);
        assert_eq!(m.cores_per_node, 16);
        assert_eq!(m.max_job_nodes(), 4_988);
    }

    #[test]
    fn small_jobs_dominate() {
        let t = workload4(0.01).generate(3);
        let small = t
            .jobs
            .iter()
            .filter(|j| j.procs().unwrap() <= 4 * 16)
            .count() as f64
            / t.len() as f64;
        assert!(small > 0.6, "small fraction {small}");
    }

    #[test]
    fn capability_tail_exists_at_scale() {
        let m = workload4(0.05); // 252 nodes, max job 249
        let t = m.generate(9);
        let max_nodes = t
            .jobs
            .iter()
            .map(|j| j.procs().unwrap() / 16)
            .max()
            .unwrap();
        assert!(
            max_nodes >= m.max_job_nodes() as u64 / 3,
            "tail reaches large sizes (max {max_nodes})"
        );
    }

    #[test]
    fn scaled_job_count_tracks_scale() {
        assert_eq!(workload4(0.01).n_jobs, 1_985);
        assert_eq!(workload4(0.1).n_jobs, 19_850);
    }
}
