//! Property tests: trace generation invariants across seeds and scales.

use proptest::prelude::*;
use workload::PaperWorkload;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))] // generation is heavy

    /// Every generated trace is structurally sound: ids dense from 1,
    /// submit-sorted, sizes within machine, runtimes within clamps,
    /// requested times never below runtimes.
    #[test]
    fn traces_are_structurally_sound(
        seed in 0u64..1000,
        scale in 0.02f64..0.08,
        widx in 0usize..4,
    ) {
        let w = PaperWorkload::SIMULATED[widx];
        let model = w.model(scale);
        let trace = model.generate(seed);
        prop_assert_eq!(trace.len(), model.n_jobs);
        let mut last_submit = 0i64;
        for (i, j) in trace.jobs.iter().enumerate() {
            prop_assert_eq!(j.job_id, i as u64 + 1, "dense ids");
            prop_assert!(j.submit >= last_submit, "submit sorted");
            last_submit = j.submit;
            let procs = j.procs().expect("procs present");
            prop_assert_eq!(procs % model.cores_per_node as u64, 0, "whole nodes");
            prop_assert!(procs / model.cores_per_node as u64 <= model.max_job_nodes() as u64);
            let rt = j.runtime().expect("runtime present");
            prop_assert!(rt >= model.runtime_min && rt <= model.runtime_max);
            prop_assert!(j.requested_time().unwrap() >= rt, "estimates never below runtime");
        }
    }

    /// Generation is a pure function of the seed.
    #[test]
    fn generation_deterministic(seed in 0u64..500) {
        let a = PaperWorkload::W3Ricc.generate(seed, 0.03);
        let b = PaperWorkload::W3Ricc.generate(seed, 0.03);
        prop_assert_eq!(a.jobs, b.jobs);
    }

    /// Different seeds produce different traces (no seed aliasing).
    #[test]
    fn seeds_matter(seed in 0u64..500) {
        let a = PaperWorkload::W1Cirne.generate(seed, 0.02);
        let b = PaperWorkload::W1Cirne.generate(seed + 1, 0.02);
        prop_assert_ne!(a.jobs, b.jobs);
    }
}
